"""Protocol-level tests of the Adaptive Hierarchical Master-Worker."""

import pytest

from repro.apps.bnb_app import BnBApplication
from repro.baselines.ahmw import AHMW_DEGREE, AHMWNode, build_ahmw_tree
from repro.bnb.engine import BnBEngine, solve_bruteforce
from repro.bnb.interval import factorials
from repro.bnb.state import BoundState
from repro.bnb.taillard import scaled_instance
from repro.core.worker import WorkerConfig
from repro.sim import Simulator, uniform_network
from repro.sim.errors import SimConfigError

INST = scaled_instance(4, n_jobs=7, n_machines=6)
OPT, _ = solve_bruteforce(INST)


def run_ahmw(n, seed=3, quantum=16, degree=3, sibling_sharing=False):
    app = BnBApplication(INST)
    tree = build_ahmw_tree(n, degree)
    sim = Simulator(uniform_network(latency=1e-4), seed=seed)
    workers = [sim.add_process(AHMWNode(p, app, WorkerConfig(
        quantum=quantum, seed=seed), tree, sibling_sharing=sibling_sharing))
        for p in range(n)]
    stats = sim.run()
    return workers, stats


def test_default_degree_is_ten():
    assert AHMW_DEGREE == 10
    tree = build_ahmw_tree(200)
    masters = sum(1 for v in range(200) if tree.children[v])
    # the ~10% masters share the paper reports for AHMW
    assert 0.05 <= masters / 200 <= 0.15


def test_bnb_specific():
    from repro.apps.synthetic import SyntheticApplication
    tree = build_ahmw_tree(5, 2)
    with pytest.raises(SimConfigError):
        AHMWNode(0, SyntheticApplication(5), WorkerConfig(), tree)


def test_finds_optimum_and_terminates():
    workers, stats = run_ahmw(14)
    assert min(w.shared.value for w in workers) == OPT
    assert all(w.terminated for w in workers)


def test_roles():
    workers, _ = run_ahmw(14, degree=3)
    masters = [w for w in workers if w.is_master]
    leaves = [w for w in workers if not w.is_master]
    assert len(masters) + len(leaves) == 14
    # masters decompose (units via bounding children), leaves explore
    assert all(w.pool is not None for w in masters)


def test_grain_deepens_with_level():
    workers, _ = run_ahmw(14, degree=3)
    by_level = {}
    for w in workers:
        if w.is_master:
            by_level[w.level] = w.target_depth
    levels = sorted(by_level)
    assert all(by_level[a] < by_level[b]
               for a, b in zip(levels, levels[1:]))


def test_decompose_block_partitions_and_conserves():
    engine = BnBEngine(INST, bound="lb1")
    n = INST.n_jobs
    width = factorials(n)[n]
    shared = BoundState()
    children, nodes, improved = engine.decompose_block(0, shared, width)
    assert nodes == n  # one bound (or leaf) evaluation per child
    child_width = factorials(n)[n - 1]
    starts = {a for a, b in children}
    for a, b in children:
        assert b - a == child_width
        assert a % child_width == 0
    assert len(starts) == len(children) <= n


def test_decompose_block_prunes_with_good_bound():
    engine = BnBEngine(INST, bound="lb1")
    n = INST.n_jobs
    width = factorials(n)[n]
    loose = BoundState()  # no bound: nothing pruned
    kids_loose, _, _ = engine.decompose_block(0, loose, width)
    tight = BoundState(value=OPT + 1)
    kids_tight, _, _ = engine.decompose_block(0, tight, width)
    assert len(kids_tight) <= len(kids_loose)


def test_decompose_block_validates_alignment():
    engine = BnBEngine(INST, bound="lb1")
    n = INST.n_jobs
    with pytest.raises(SimConfigError):
        engine.decompose_block(1, BoundState(), factorials(n)[n - 1] + 1)
    with pytest.raises(SimConfigError):
        engine.decompose_block(1, BoundState(), factorials(n)[n - 1])


def test_masters_and_leaves_both_work():
    workers, stats = run_ahmw(14, degree=3)
    masters = [w.pid for w in workers if w.is_master]
    leaves = [w.pid for w in workers if not w.is_master]
    m_units = sum(stats.per_process[p].work_units for p in masters)
    l_units = sum(stats.per_process[p].work_units for p in leaves)
    assert m_units > 0 and l_units > 0
    # decomposition is the minority of the exploration
    assert l_units > m_units


def test_needs_two_nodes():
    from repro.experiments.runner import RunConfig
    with pytest.raises(SimConfigError):
        RunConfig(protocol="AHMW", n=1)


def test_deterministic():
    a = run_ahmw(14, seed=9)[1]
    b = run_ahmw(14, seed=9)[1]
    assert (a.makespan, a.total_msgs) == (b.makespan, b.total_msgs)


@pytest.mark.parametrize("n", [14, 40])
def test_sibling_sharing_variant_correct(n):
    workers, stats = run_ahmw(n, sibling_sharing=True)
    assert min(w.shared.value for w in workers) == OPT
    assert all(w.terminated for w in workers)


def test_sibling_sharing_moves_work_sideways():
    """With several same-level masters, sibling grants happen."""
    # degree 3, n = 40: levels 0..3; level-1 masters are siblings
    workers, _ = run_ahmw(40, sibling_sharing=True)
    sib_recv = sum(1 for w in workers
                   if w.is_master and not w.sib_outstanding
                   and w.stats.work_msgs_received > 0)
    assert sib_recv >= 0  # structural smoke; correctness asserted above


def test_siblings_are_same_level_masters():
    tree = build_ahmw_tree(40, 3)
    app = BnBApplication(INST)
    from repro.sim import Simulator, uniform_network
    sim = Simulator(uniform_network(), seed=1)
    nodes = [sim.add_process(AHMWNode(p, app, WorkerConfig(), tree,
                                      sibling_sharing=True))
             for p in range(40)]
    for w in nodes:
        for s in w.siblings:
            assert tree.depth[s] == tree.depth[w.pid]
            assert tree.parent[s] == tree.parent[w.pid]
            assert tree.children[s]  # siblings are masters, not leaves
