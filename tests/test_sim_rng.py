"""Tests for deterministic RNG streams and SplitMix64 mixing."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim.rng import (RngStream, derive_seed, fold_words, mix64,
                           spawn_numpy, splitmix64, stream_family)


def test_streams_deterministic():
    a = RngStream(42, "x", 1)
    b = RngStream(42, "x", 1)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_differ_by_path():
    a = RngStream(42, "x", 1)
    b = RngStream(42, "x", 2)
    c = RngStream(43, "x", 1)
    va = [a.random() for _ in range(5)]
    assert va != [b.random() for _ in range(5)]
    a2 = RngStream(42, "x", 1)
    assert va != [c.random() for _ in range(5)]
    assert va == [a2.random() for _ in range(5)]


def test_derive_seed_string_stability():
    # must not depend on PYTHONHASHSEED: fixed expected value
    s1 = derive_seed(7, "workers", 3)
    s2 = derive_seed(7, "workers", 3)
    assert s1 == s2
    assert derive_seed(7, "workers", 4) != s1
    assert derive_seed(7, "worker", 3) != s1


def test_mix64_scalar_matches_vector():
    xs = np.arange(100, dtype=np.uint64)
    vec = mix64(xs)
    for i in range(100):
        assert mix64(np.uint64(i)) == vec[i]


def test_mix64_bijective_sample():
    xs = np.arange(100_000, dtype=np.uint64)
    assert len(np.unique(mix64(xs))) == len(xs)


def test_splitmix64_uniformity_rough():
    out = splitmix64(123, 200_000)
    bits = (out >> np.uint64(63)).astype(np.int64)
    # top bit should be a fair coin within 1%
    assert abs(bits.mean() - 0.5) < 0.01
    floats = (out >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    assert abs(floats.mean() - 0.5) < 0.005
    assert abs(np.var(floats) - 1 / 12) < 0.005


def test_splitmix64_negative_n():
    import pytest
    with pytest.raises(ValueError):
        splitmix64(1, -1)


def test_stream_family_independent():
    fam = stream_family(9, "w", 4)
    seqs = [tuple(s.randint(0, 1000) for _ in range(8)) for s in fam]
    assert len(set(seqs)) == 4


def test_spawn_numpy_deterministic():
    g1 = spawn_numpy(5, "a")
    g2 = spawn_numpy(5, "a")
    assert np.array_equal(g1.integers(0, 100, 10), g2.integers(0, 100, 10))


def test_fold_words_order_sensitive():
    assert fold_words([1, 2, 3]) != fold_words([3, 2, 1])
    assert fold_words([1, 2, 3]) == fold_words([1, 2, 3])


def test_stream_helpers():
    s = RngStream(1, "t")
    assert 0 <= s.randrange(10) < 10
    assert s.choice([1, 2, 3]) in (1, 2, 3)
    xs = list(range(20))
    s.shuffle(xs)
    assert sorted(xs) == list(range(20))
    assert len(s.sample(range(50), 5)) == 5
    assert 0.0 <= s.uniform(0, 1) <= 1.0
    assert s.expovariate(2.0) >= 0.0


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_property_mix64_in_range(x):
    y = int(mix64(np.uint64(x)))
    assert 0 <= y < 2**64


@given(st.integers(min_value=0), st.integers(min_value=0, max_value=20))
def test_property_derive_seed_63bit(seed, k):
    s = derive_seed(seed, "p", k)
    assert 0 <= s < 2**63
