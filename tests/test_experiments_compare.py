"""Tests for the head-to-head comparison tool."""

import pytest

from repro.experiments.compare import compare, main, parse_app
from repro.sim.errors import SimConfigError


def test_parse_app_uts():
    factory = parse_app("uts:bin_mini")
    app = factory()
    assert "UTS" in app.name


def test_parse_app_bnb():
    factory = parse_app("bnb:2:7:5")
    app = factory()
    assert app.instance.n_jobs == 7
    assert app.instance.n_machines == 5
    assert app.warm_start is True


def test_parse_app_defaults_and_errors():
    assert parse_app("uts:")().params is not None
    with pytest.raises(SimConfigError):
        parse_app("bnb:")
    with pytest.raises(SimConfigError):
        parse_app("sat:42")
    with pytest.raises(SimConfigError):
        parse_app("uts:nonexistent")


def test_compare_grid():
    factory = parse_app("uts:bin_mini")
    rows = compare(["TD", "RWS"], factory, ns=[4, 8], quantum=32,
                   trials=1, seed=3, dmax=3)
    assert len(rows) == 4
    assert {r[1] for r in rows} == {"TD", "RWS"}
    assert all(r[2] > 0 for r in rows)  # times
    assert all(0 < r[4] <= 110 for r in rows)  # efficiency %


def test_compare_bnb_reports_optimum():
    factory = parse_app("bnb:5:6:5")
    rows = compare(["BTD", "MW"], factory, ns=[6], quantum=16, trials=1,
                   seed=3)
    from repro.bnb.engine import solve_bruteforce
    opt, _ = solve_bruteforce(factory().instance)
    assert all(r[7] == opt for r in rows)


def test_cli_main(capsys):
    assert main(["--protocols", "TD", "--app", "uts:bin_mini",
                 "--n", "4", "--quantum", "32"]) == 0
    out = capsys.readouterr().out
    assert "TD" in out and "PE %" in out
