"""Tests for run reports: the work-conservation invariant and the CLI."""

import json

import pytest

from repro.experiments.runner import RunConfig, run_instrumented
from repro.experiments.runreport import report_main
from repro.experiments.specs import UTSSpec
from repro.obs.export import load_trace
from repro.obs.registry import MetricsRegistry
from repro.obs.report import (REPORT_SCHEMA_VERSION, build_report,
                              load_entropy, steal_matrix)
from repro.sim.trace import TRANSFER, Tracer
from repro.uts.params import PRESETS

MINI = PRESETS["bin_mini"].params
MINI_NODES = 53


# -- load metrics ------------------------------------------------------------

def test_load_entropy():
    assert load_entropy([10, 10, 10, 10]) == pytest.approx(1.0)
    assert load_entropy([40, 0, 0, 0]) == pytest.approx(0.0)
    assert load_entropy([]) is None
    assert load_entropy([7]) is None          # single node: undefined
    assert load_entropy([0, 0]) is None       # no work done
    mid = load_entropy([30, 10])
    assert 0.0 < mid < 1.0


def test_steal_matrix_from_transfer_samples():
    t = Tracer()
    t.record(0.1, 3, TRANSFER, 0.0)           # 0 -> 3
    t.record(0.2, 3, TRANSFER, 0.0)           # 0 -> 3 again
    t.record(0.3, 1, TRANSFER, 2.0)           # 2 -> 1
    t.record(0.4, 1, "quantum", 64.0)         # ignored
    assert steal_matrix(t) == {(0, 3): 2, (2, 1): 1}


# -- the conservation invariant ----------------------------------------------

@pytest.mark.parametrize("protocol", ["TD", "BTD", "RWS"])
def test_per_node_units_sum_to_total(protocol):
    """Report per-node work totals sum exactly to the run's work units."""
    cfg = RunConfig(protocol=protocol, n=8, quantum=16, seed=42)
    tracer, metrics = Tracer(), MetricsRegistry()
    result, stats = run_instrumented(cfg, UTSSpec(MINI).build(),
                                     tracer=tracer, metrics=metrics)
    report = build_report(cfg, result, stats, tracer=tracer,
                          metrics=metrics, app="uts/bin_mini")
    doc = report.to_json()
    assert doc["schema"] == REPORT_SCHEMA_VERSION
    per_node_sum = sum(row["units"] for row in doc["per_node"])
    assert per_node_sum == doc["totals"]["work_units"] == MINI_NODES
    assert len(doc["per_node"]) == 8
    shares = [row["share_pct"] for row in doc["per_node"]]
    assert sum(shares) == pytest.approx(100.0)
    # the rendering is exercised too (no crash, mentions the protocol)
    assert protocol in report.render()


def test_report_counts_transfers_and_metrics():
    # quantum 4: small enough that steals are actually served on the
    # 53-node mini tree (quantum 16 drains it before any WORK reply)
    cfg = RunConfig(protocol="BTD", n=8, quantum=4, seed=42)
    tracer, metrics = Tracer(), MetricsRegistry()
    result, stats = run_instrumented(cfg, UTSSpec(MINI).build(),
                                     tracer=tracer, metrics=metrics)
    report = build_report(cfg, result, stats, tracer=tracer, metrics=metrics)
    # every recorded transfer edge appears in the matrix, and transfer
    # counts agree with the metrics registry's WORK-transfer histogram
    total_edges = sum(e["count"] for e in report.transfers)
    xfers = metrics.get("work.transfer_units")
    assert xfers is not None and xfers.count == total_edges > 0
    assert report.metrics["steal.requests"]["value"] == \
        report.totals["steals"]


def test_report_surfaces_circuit_breakers():
    """A partitioned run's report carries the breaker section: per-(owner,
    peer) trip/probe/open-span rows folded from CIRCUIT trace samples."""
    from repro.sim.faults import FaultPlan
    from repro.uts.params import PRESETS as UTS_PRESETS
    plan = FaultPlan(partitions=(((8, 9, 10, 11, 12, 13, 14, 15),
                                  1e-3, 8e-3),))
    cfg = RunConfig(protocol="BTD", n=16, quantum=16, seed=1, faults=plan,
                    ack_timeout=5e-4, breaker_threshold=3)
    tracer = Tracer()
    result, stats = run_instrumented(
        cfg, UTSSpec(UTS_PRESETS["bin_tiny"].params).build(), tracer=tracer)
    report = build_report(cfg, result, stats, tracer=tracer,
                          app="uts/bin_tiny")
    doc = report.to_json()
    assert doc["faults"]["breaker_opens"] == result.breaker_opens > 0
    rows = doc["breakers"]
    assert rows, "no breaker rows despite trips"
    assert sum(r["opens"] for r in rows) == result.breaker_opens
    for r in rows:
        assert r["state"] == "closed"            # the heal closed them all
        assert r["open_s"] > 0.0
        assert r["owner"] != r["peer"]
    rendered = report.render()
    assert "breaker trips" in rendered
    assert "circuit breakers" in rendered


def test_report_without_faults_has_no_breaker_section():
    cfg = RunConfig(protocol="BTD", n=8, quantum=16, seed=42)
    tracer = Tracer()
    result, stats = run_instrumented(cfg, UTSSpec(MINI).build(),
                                     tracer=tracer)
    report = build_report(cfg, result, stats, tracer=tracer)
    assert report.breakers == []
    assert "circuit breakers" not in report.render()


# -- the CLI -----------------------------------------------------------------

def test_report_cli_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    json_out = tmp_path / "report.json"
    trace_out = tmp_path / "trace.ndjson.gz"
    text_out = tmp_path / "report.txt"

    rc = report_main(["--app", "uts", "--preset", "bin_mini",
                      "--protocol", "BTD", "--n", "8", "--quantum", "16",
                      "--seed", "42", "--json", str(json_out),
                      "--trace", str(trace_out), "--out", str(text_out)])
    assert rc == 0
    rendered = capsys.readouterr().out
    assert "run report: uts/bin_mini / BTD n=8" in rendered
    assert text_out.read_text().strip() in rendered.strip()

    doc = json.loads(json_out.read_text())
    assert doc["schema"] == REPORT_SCHEMA_VERSION
    assert doc["meta"]["cached_cell"] is False       # cache dir was empty
    assert sum(r["units"] for r in doc["per_node"]) \
        == doc["totals"]["work_units"] == MINI_NODES

    loaded = load_trace(str(trace_out))
    assert loaded.meta["protocol"] == "BTD"
    assert loaded.meta["cell_key"] == doc["meta"]["cell_key"]
    assert len(loaded.samples) > 0


def test_report_cli_cross_checks_cached_cell(tmp_path, monkeypatch, capsys):
    """With the grid cell already cached, the report flags the cache hit."""
    from repro.experiments.cache import ResultCache, cell_key
    from repro.experiments.runner import run_once

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)

    spec = UTSSpec(MINI)
    cfg = RunConfig(protocol="BTD", n=8, quantum=16, seed=42,
                    dmax=10, sharing="proportional")
    result = run_once(cfg, spec.build())
    ResultCache().put(cell_key(cfg, spec), result)

    json_out = tmp_path / "report.json"
    rc = report_main(["--app", "uts", "--preset", "bin_mini",
                      "--protocol", "BTD", "--n", "8", "--quantum", "16",
                      "--seed", "42", "--quiet", "--json", str(json_out)])
    assert rc == 0
    captured = capsys.readouterr()
    assert captured.out == ""                        # --quiet
    assert "WARNING" not in captured.err             # fresh == cached
    doc = json.loads(json_out.read_text())
    assert doc["meta"]["cached_cell"] is True
    assert "cached_cell_mismatch" not in doc["meta"]


def test_report_cli_rejects_unknown_preset(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    with pytest.raises(SystemExit):
        report_main(["--app", "uts", "--preset", "no_such_preset"])
