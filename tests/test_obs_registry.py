"""Tests for the metrics registry: counters, gauges, bounded histograms."""

import pytest

from repro.obs.registry import (LATENCY_EDGES, METRICS, SIZE_EDGES, Counter,
                                Gauge, Histogram, MetricsRegistry)
from repro.sim.errors import SimConfigError


# -- histograms --------------------------------------------------------------

def test_histogram_empty():
    h = Histogram("h", edges=[1.0, 2.0])
    assert h.count == 0
    assert h.total == 0.0
    assert h.mean is None
    assert h.min is None and h.max is None
    assert h.overflow == 0
    assert h.counts == [0, 0, 0]           # len(edges) + 1
    snap = h.snapshot()
    assert snap["type"] == "histogram"
    assert snap["count"] == 0 and snap["mean"] is None


def test_histogram_single_sample():
    h = Histogram("h", edges=[1.0, 4.0, 16.0])
    h.observe(3.0)
    assert h.count == 1
    assert h.mean == pytest.approx(3.0)
    assert h.min == h.max == 3.0
    assert h.counts == [0, 1, 0, 0]        # (1, 4] bucket
    assert h.overflow == 0


def test_histogram_edges_are_inclusive_upper_bounds():
    h = Histogram("h", edges=[1.0, 4.0])
    h.observe(1.0)                         # exactly on an edge -> that bucket
    h.observe(4.0)
    assert h.counts == [1, 1, 0]


def test_histogram_overflow_bucket():
    h = Histogram("h", edges=[1.0, 2.0])
    for v in (0.5, 1.5, 2.5, 1e9):
        h.observe(v)
    assert h.counts == [1, 1, 2]
    assert h.overflow == 2                 # 2.5 and 1e9
    assert h.count == 4
    assert h.max == 1e9
    # exact moments survive bucketing
    assert h.total == pytest.approx(0.5 + 1.5 + 2.5 + 1e9)


def test_histogram_rejects_bad_edges():
    with pytest.raises(SimConfigError):
        Histogram("h", edges=[])
    with pytest.raises(SimConfigError):
        Histogram("h", edges=[1.0, 1.0])
    with pytest.raises(SimConfigError):
        Histogram("h", edges=[2.0, 1.0])


def test_default_edge_tables_strictly_increase():
    for edges in (LATENCY_EDGES, SIZE_EDGES):
        assert all(b > a for a, b in zip(edges, edges[1:]))


# -- counters / gauges -------------------------------------------------------

def test_counter_and_gauge():
    c = Counter("c")
    c.inc()
    c.inc(5)
    assert c.value == 6
    assert c.snapshot() == {"type": "counter", "value": 6}
    g = Gauge("g")
    g.set(2.5)
    g.set(1.5)                             # last write wins
    assert g.value == 1.5
    assert g.snapshot() == {"type": "gauge", "value": 1.5}


# -- registry ----------------------------------------------------------------

def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    c1 = reg.counter("steal.requests")
    c1.inc(3)
    c2 = reg.counter("steal.requests")
    assert c1 is c2
    assert c2.value == 3
    h1 = reg.histogram("steal.latency_s")
    h2 = reg.histogram("steal.latency_s", edges=[99.0])  # edges ignored
    assert h1 is h2
    assert len(reg) == 2
    assert reg.names() == ["steal.latency_s", "steal.requests"]


def test_registry_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(SimConfigError):
        reg.gauge("x")
    with pytest.raises(SimConfigError):
        reg.histogram("x")
    reg.histogram("y")
    with pytest.raises(SimConfigError):
        reg.counter("y")


def test_registry_snapshot_sorted_and_catalogue_help():
    reg = MetricsRegistry()
    reg.gauge("engine.makespan_s").set(1.0)
    reg.counter("steal.requests").inc()
    snap = reg.snapshot()
    assert list(snap) == ["engine.makespan_s", "steal.requests"]
    # catalogue names pick up their documented help text
    assert reg.get("steal.requests").help == METRICS["steal.requests"][1]


def test_catalogue_kinds_are_known():
    assert set(k for k, _ in METRICS.values()) <= {"counter", "gauge",
                                                   "histogram"}
