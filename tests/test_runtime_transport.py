"""Framed socket transport: buffering, EOF detection, listener fallback."""

import socket

import pytest

from repro.runtime.codec import WireError
from repro.runtime.transport import (FramedConnection, connect_endpoint,
                                     open_listener, unlink_quietly)


def _pair():
    a, b = socket.socketpair()
    return FramedConnection(a), FramedConnection(b)


def test_send_flush_receive_roundtrip():
    a, b = _pair()
    try:
        frames = [{"i": i, "pad": "x" * i} for i in range(20)]
        for f in frames:
            a.send_frame(f)
        assert a.wants_write
        while not a.flush():
            pass
        assert not a.wants_write
        got = []
        while len(got) < len(frames):
            got.extend(b.receive())
        assert got == frames
    finally:
        a.close()
        b.close()


def test_receive_sets_eof_on_peer_close():
    a, b = _pair()
    try:
        a.send_frame({"last": 1})
        a.flush()
        a.close()
        frames = b.receive()
        assert frames == [{"last": 1}]
        assert b.eof
    finally:
        b.close()


def test_flush_to_closed_peer_drops_backlog():
    a, b = _pair()
    b.close()
    try:
        a.send_frame({"x": "y" * 100000})
        # may need two flushes: the first can hit the buffer, the second
        # the reset; either way the backlog clears instead of leaking
        a.flush()
        a.flush()
        assert not a.wants_write
    finally:
        a.close()


def test_tcp_listener_falls_back_to_ephemeral_port():
    sock1, ep1 = open_listener("tcp", port=0)
    try:
        busy = ep1["port"]
        sock2, ep2 = open_listener("tcp", port=busy)
        try:
            assert ep2["kind"] == "tcp"
            assert ep2["port"] != busy          # fell back, did not fail
        finally:
            sock2.close()
    finally:
        sock1.close()


def test_tcp_connect_roundtrip():
    listener, ep = open_listener("tcp", port=0)
    try:
        client = connect_endpoint(ep)
        server, _ = listener.accept()
        a, b = FramedConnection(client), FramedConnection(server)
        try:
            a.send_frame({"hello": 1})
            while not a.flush():
                pass
            got = []
            while not got:
                got.extend(b.receive())
            assert got == [{"hello": 1}]
        finally:
            a.close()
            b.close()
    finally:
        listener.close()


def test_unix_listener_roundtrip(tmp_path):
    path = str(tmp_path / "s.sock")
    listener, ep = open_listener("unix", path=path)
    try:
        assert ep == {"kind": "unix", "path": path}
        client = connect_endpoint(ep)
        server, _ = listener.accept()
        a, b = FramedConnection(client), FramedConnection(server)
        try:
            a.send_frame({"via": "unix"})
            while not a.flush():
                pass
            got = []
            while not got:
                got.extend(b.receive())
            assert got == [{"via": "unix"}]
        finally:
            a.close()
            b.close()
    finally:
        listener.close()
        unlink_quietly(path)
        unlink_quietly(path)                     # idempotent


def test_unix_listener_requires_path():
    with pytest.raises(WireError):
        open_listener("unix")


def test_unknown_transport_rejected():
    with pytest.raises(WireError):
        open_listener("carrier-pigeon")


def test_peer_listener_survives_port_collision():
    # Two p2p workers can race for the same preferred data-plane port
    # (peer_port_base collisions, or a stale run tearing down).  The
    # worker-side listener must inherit open_listener's EADDRINUSE retry
    # + ephemeral fallback: the second worker comes up on a different
    # port and advertises the endpoint it actually bound, never failing
    # the run.
    from repro.runtime.mesh import open_peer_listener

    sock1, ep1 = open_peer_listener("tcp", "127.0.0.1", 0, None, pid=1)
    try:
        busy = ep1["port"]
        sock2, ep2 = open_peer_listener("tcp", "127.0.0.1", busy, None,
                                        pid=2)
        try:
            assert ep2["kind"] == "tcp"
            assert ep2["port"] != busy          # fell back, did not fail
            assert not sock2.getblocking()      # reactor-ready
            # the advertised endpoint is the one that actually accepts
            client = connect_endpoint(ep2)
            try:
                server = None
                for _ in range(100):
                    try:
                        server, _addr = sock2.accept()
                        break
                    except BlockingIOError:
                        import time
                        time.sleep(0.01)
                assert server is not None
                server.close()
            finally:
                client.close()
        finally:
            sock2.close()
    finally:
        sock1.close()
