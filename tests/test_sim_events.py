"""Unit tests for the event queue: ordering, cancellation, invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.errors import SimRuntimeError
from repro.sim.events import EventQueue


def test_fifo_for_equal_times():
    q = EventQueue()
    order = []
    for i in range(5):
        q.push(1.0, lambda i=i: order.append(i))
    while (ev := q.pop()) is not None:
        ev.action()
    assert order == [0, 1, 2, 3, 4]


def test_time_ordering():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append(3))
    q.push(1.0, lambda: fired.append(1))
    q.push(2.0, lambda: fired.append(2))
    while (ev := q.pop()) is not None:
        ev.action()
    assert fired == [1, 2, 3]


def test_now_advances_with_pop():
    q = EventQueue()
    q.push(5.0, lambda: None)
    assert q.now == 0.0
    q.pop()
    assert q.now == 5.0


def test_push_into_past_rejected():
    q = EventQueue()
    q.push(5.0, lambda: None)
    q.pop()
    with pytest.raises(SimRuntimeError):
        q.push(4.0, lambda: None)


def test_push_at_now_allowed():
    q = EventQueue()
    q.push(5.0, lambda: None)
    q.pop()
    q.push(5.0, lambda: None)  # same time is fine
    assert q.pop() is not None


def test_cancellation_skips_event():
    q = EventQueue()
    ev = q.push(1.0, lambda: (_ for _ in ()).throw(AssertionError))
    q.push(2.0, lambda: None)
    ev.cancel()
    popped = q.pop()
    assert popped is not None and popped.time == 2.0
    assert q.skipped == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(7.0, lambda: None)
    ev.cancel()
    assert q.peek_time() == 7.0


def test_len_and_bool():
    q = EventQueue()
    assert not q and len(q) == 0
    q.push(1.0, lambda: None)
    assert q and len(q) == 1


def test_counters():
    q = EventQueue()
    for t in (1.0, 2.0):
        q.push(t, lambda: None)
    q.pop(), q.pop()
    assert q.pushed == 2 and q.fired == 2


def test_snapshot_tags():
    q = EventQueue()
    q.push(2.0, lambda: None, tag="b")
    q.push(1.0, lambda: None, tag="a")
    assert q.snapshot_tags() == [(1.0, "a"), (2.0, "b")]


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_property_pop_order_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (ev := q.pop()) is not None:
        popped.append(ev.time)
    assert popped == sorted(times)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=100))
def test_property_cancelled_never_fire(entries):
    q = EventQueue()
    events = [(q.push(t, lambda: None), cancel) for t, cancel in entries]
    live = 0
    for ev, cancel in events:
        if cancel:
            ev.cancel()
        else:
            live += 1
    fired = 0
    while q.pop() is not None:
        fired += 1
    assert fired == live


# -- peek / cancel edges (the contracts the macro-event fast path rests on) --


def test_peek_returns_next_live_event():
    q = EventQueue()
    q.push(3.0, lambda: None, tag="late")
    q.push(1.0, lambda: None, tag="early")
    ev = q.peek()
    assert ev is not None and ev.time == 1.0 and ev.tag == "early"
    # peeking neither pops nor advances the clock
    assert len(q) == 2 and q.now == 0.0
    assert q.pop() is ev


def test_cancel_then_peek_skips_to_next_live():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None, tag="live")
    first.cancel()
    assert q.peek_time() == 2.0
    ev = q.peek()
    assert ev is not None and ev.tag == "live" and not ev.cancelled
    assert q.skipped == 1  # the cancelled head was pruned, not retained


def test_peek_all_cancelled_returns_none():
    q = EventQueue()
    evs = [q.push(float(t), lambda: None) for t in (1, 2, 3)]
    for ev in evs:
        ev.cancel()
    assert q.peek() is None
    assert q.peek_time() is None
    assert len(q) == 0


def test_peek_equal_timestamp_tiebreak_stable():
    """peek() must agree with pop() order for equal times: insertion order."""
    q = EventQueue()
    a = q.push(1.0, lambda: None, tag="a")
    q.push(1.0, lambda: None, tag="b")
    assert q.peek() is a
    # cancelling the first makes the *second* insertion the head
    a.cancel()
    ev = q.peek()
    assert ev is not None and ev.tag == "b"
    popped = q.pop()
    assert popped is ev


def test_peek_after_cancel_of_later_event():
    """Cancelling a non-head event never disturbs the head."""
    q = EventQueue()
    head = q.push(1.0, lambda: None)
    later = q.push(5.0, lambda: None)
    later.cancel()
    assert q.peek() is head
    assert q.peek_time() == 1.0


def test_peek_then_push_earlier_updates_head():
    q = EventQueue()
    q.push(5.0, lambda: None)
    assert q.peek_time() == 5.0
    early = q.push(2.0, lambda: None)
    assert q.peek() is early


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=50,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=60))
def test_property_peek_matches_next_pop(entries):
    """After arbitrary pushes and cancellations, peek() == next pop()."""
    q = EventQueue()
    for t, cancel in entries:
        ev = q.push(t, lambda: None)
        if cancel:
            ev.cancel()
    while True:
        peeked = q.peek()
        popped = q.pop()
        assert peeked is popped
        if popped is None:
            break
