"""End-to-end B&B correctness: every protocol finds the exact optimum."""

import pytest

from repro.apps import BnBApplication
from repro.bnb import BnBEngine, scaled_instance, solve_bruteforce
from repro.experiments.runner import RunConfig, run_once

INST = scaled_instance(2, n_jobs=8, n_machines=8)
OPT, _ = solve_bruteforce(INST)


def run(proto, n, **kw):
    cfg = RunConfig(protocol=proto, n=n, seed=kw.pop("seed", 5),
                    quantum=kw.pop("quantum", 32), **kw)
    return run_once(cfg, BnBApplication(INST))


@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS", "MW", "AHMW"])
@pytest.mark.parametrize("n", [2, 13, 32])
def test_optimum_all_protocols(proto, n):
    r = run(proto, n, dmax=3)
    assert r.optimum == OPT
    assert r.optimum_perm is not None
    assert INST.makespan(r.optimum_perm) == OPT


@pytest.mark.parametrize("proto", ["TD", "BTD", "RWS", "MW", "AHMW"])
def test_optimum_under_jitter(proto):
    for seed in (1, 2):
        r = run(proto, 16, dmax=3, jitter=2.5, seed=seed)
        assert r.optimum == OPT


def test_single_worker_protocols():
    r = run("TD", 1, dmax=2)
    assert r.optimum == OPT
    # single worker == sequential search: node counts match
    _, _, seq_nodes = BnBEngine(INST, bound="lb1").solve()
    assert r.total_units == seq_nodes


@pytest.mark.parametrize("bound", ["trivial", "lb1", "llrk"])
def test_any_bound_parallel(bound):
    r = run_once(RunConfig(protocol="BTD", n=8, dmax=3, seed=1, quantum=32),
                 BnBApplication(INST, bound=bound))
    assert r.optimum == OPT


def test_bound_gossip_reduces_exploration():
    """Diffusion of upper bounds prunes work on other nodes."""
    from repro.core.worker import WorkerConfig
    from repro.experiments.runner import build_workers
    from repro.sim import Simulator, grid5000

    def total_units(gossip: bool) -> int:
        cfg = RunConfig(protocol="TD", n=16, dmax=3, seed=7, quantum=32)
        sim = Simulator(grid5000(), seed=7)
        app = BnBApplication(INST)
        wc_patch = WorkerConfig(quantum=32, seed=7, gossip_bounds=gossip)
        workers = build_workers(sim, cfg, app)
        for w in workers:
            w.cfg = wc_patch
        stats = sim.run()
        return stats.total_work_units

    assert total_units(True) < total_units(False)


def test_mw_redundancy_tracked_and_bounded():
    r = run("MW", 16, seed=3)
    from repro.bnb import tree_leaves
    assert 0 <= r.redundancy < tree_leaves(INST.n_jobs)


def test_mw_master_does_no_app_work():
    from repro.experiments.runner import build_workers
    from repro.sim import Simulator, grid5000
    cfg = RunConfig(protocol="MW", n=12, seed=2, quantum=32)
    sim = Simulator(grid5000(), seed=2)
    build_workers(sim, cfg, BnBApplication(INST))
    stats = sim.run()
    assert stats.per_process[0].work_units == 0
    assert sum(p.work_units for p in stats.per_process) > 0


def test_ahmw_masters_decompose_workers_explore():
    from repro.experiments.runner import build_workers
    from repro.sim import Simulator, grid5000
    cfg = RunConfig(protocol="AHMW", n=23, seed=2, quantum=32)
    sim = Simulator(grid5000(), seed=2)
    workers = build_workers(sim, cfg, BnBApplication(INST))
    stats = sim.run()
    masters = [w.pid for w in workers if w.is_master]
    leaves = [w.pid for w in workers if not w.is_master]
    assert masters and leaves
    # both roles contribute nodes (masters: decomposition bounds)
    assert sum(stats.per_process[p].work_units for p in masters) > 0
    assert sum(stats.per_process[p].work_units for p in leaves) > 0
    # the optimum still comes out right
    best = min(w.shared.value for w in workers)
    assert best == OPT


def test_protocols_explore_different_amounts():
    """Speedup anomalies: exploration depends on the work-sharing order."""
    counts = {p: run(p, 16, dmax=3).total_units
              for p in ("TD", "RWS", "MW")}
    assert len(set(counts.values())) > 1


def test_determinism_bnb():
    a = run("MW", 16, seed=4)
    b = run("MW", 16, seed=4)
    assert (a.makespan, a.total_msgs, a.total_units) == \
        (b.makespan, b.total_msgs, b.total_units)
