"""Tests for the network cost model and cluster placement."""

import pytest

from repro.sim.errors import SimConfigError
from repro.sim.network import (ClusterSpec, NetworkModel, grid5000,
                               uniform_network)


def test_cluster_validation():
    with pytest.raises(SimConfigError):
        ClusterSpec("bad", 0)


def test_model_validation():
    with pytest.raises(SimConfigError):
        NetworkModel(clusters=())
    with pytest.raises(SimConfigError):
        NetworkModel(clusters=(ClusterSpec("a", 4),), bandwidth=0)
    with pytest.raises(SimConfigError):
        NetworkModel(clusters=(ClusterSpec("a", 4),), lat_intra=-1)
    with pytest.raises(SimConfigError):
        NetworkModel(clusters=(ClusterSpec("a", 4),), handler_cost=-1)


def test_placement_small_run_stays_on_c1():
    net = grid5000()
    net.place(200, seed=1)
    assert all(net.cluster_of(p) == 0 for p in range(200))


def test_placement_large_run_uses_both():
    net = grid5000()
    net.place(1000, seed=1)
    used = {net.cluster_of(p) for p in range(1000)}
    assert used == {0, 1}


def test_placement_capacity_check():
    net = grid5000()
    with pytest.raises(SimConfigError):
        net.place(92 * 8 + 144 * 4 + 1)
    with pytest.raises(SimConfigError):
        net.place(0)


def test_placement_required_before_latency():
    net = grid5000()
    with pytest.raises(SimConfigError):
        net.latency(0, 1)


def test_placement_deterministic():
    a, b = grid5000(), grid5000()
    a.place(1000, seed=7)
    b.place(1000, seed=7)
    assert all(a.cluster_of(p) == b.cluster_of(p) for p in range(1000))


def test_latency_intra_vs_inter():
    net = grid5000()
    net.place(1000, seed=3)
    by_cluster = {0: [], 1: []}
    for p in range(1000):
        by_cluster[net.cluster_of(p)].append(p)
    a, b = by_cluster[0][0], by_cluster[0][1]
    c = by_cluster[1][0]
    assert net.latency(a, b) == net.lat_intra
    assert net.latency(a, c) == net.lat_inter
    assert net.latency(a, a) == 0.0


def test_delivery_delay_includes_bandwidth():
    net = uniform_network(latency=1e-4)
    net.place(2)
    small = net.delivery_delay(0, 1, 100)
    big = net.delivery_delay(0, 1, 10_000_000)
    assert big > small
    assert small == pytest.approx(1e-4 + 100 / net.bandwidth)


def test_jitter_adds_positive_noise_deterministically():
    net1 = uniform_network(latency=1e-4, jitter=2.0)
    net2 = uniform_network(latency=1e-4, jitter=2.0)
    net1.place(4, seed=5)
    net2.place(4, seed=5)
    d1 = [net1.delivery_delay(0, 1, 64) for _ in range(20)]
    d2 = [net2.delivery_delay(0, 1, 64) for _ in range(20)]
    assert d1 == d2
    assert all(d >= 1e-4 for d in d1)
    assert len(set(d1)) > 1  # actually jittering


def test_no_jitter_on_self_messages():
    net = uniform_network(latency=1e-4, jitter=2.0)
    net.place(2, seed=5)
    assert net.delivery_delay(0, 0, 64) == pytest.approx(64 / net.bandwidth)
