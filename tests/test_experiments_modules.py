"""Every table/figure module runs end-to-end at the micro scale.

These are structural tests (the report machinery, data plumbing, shape-check
code paths); the *reproduction* assertions live in ``benchmarks/`` at the
quick scale and in EXPERIMENTS.md at the default scale.
"""

import pytest

from repro.experiments.config import get_scale
from repro.experiments.registry import EXPERIMENTS, ORDER

MICRO = get_scale("micro")


@pytest.mark.parametrize("exp_id", ORDER)
def test_experiment_runs_at_micro_scale(exp_id):
    report = EXPERIMENTS[exp_id](MICRO)
    assert report.exp_id == exp_id
    assert report.sections, "report has no content"
    assert report.wall_seconds > 0
    text = report.render()
    assert report.title in text
    assert "paper expectation" in text
    summary = report.summary()
    assert summary["experiment"] == exp_id


def test_micro_scale_is_fast_enough_for_ci():
    assert MICRO.trials == 1
    assert max(MICRO.fig45_n) <= 16
