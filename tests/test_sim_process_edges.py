"""Edge-case tests of the SimProcess CPU/occupancy model."""

import pytest

from repro.sim import SimProcess, Simulator, uniform_network
from repro.sim.errors import SimRuntimeError


class Host(SimProcess):
    def __init__(self, pid):
        super().__init__(pid)
        self.log = []

    def on_message(self, msg):
        self.log.append((self.now, msg.kind))


def make(n=1):
    sim = Simulator(uniform_network(latency=1e-4, handler_cost=1e-5), seed=1)
    hosts = [sim.add_process(Host(i)) for i in range(n)]
    return sim, hosts


def test_negative_pid_rejected():
    with pytest.raises(SimRuntimeError):
        Host(-1)


def test_occupy_while_busy_raises():
    sim, (h,) = make()

    def boot():
        h.occupy(1.0, lambda: None)
        with pytest.raises(SimRuntimeError):
            h.occupy(1.0, lambda: None)

    h.start = boot
    sim.run()


def test_negative_occupy_raises():
    sim, (h,) = make()

    def boot():
        with pytest.raises(SimRuntimeError):
            h.occupy(-1.0, lambda: None)

    h.start = boot
    sim.run()


def test_zero_duration_occupy_allowed():
    sim, (h,) = make()
    marks = []

    def boot():
        h.occupy(0.0, lambda: marks.append(h.now))

    h.start = boot
    sim.run()
    assert marks == [0.0]


def test_cpu_busy_flag_lifecycle():
    sim, (h,) = make()
    observed = []

    def boot():
        observed.append(h.cpu_busy)
        h.occupy(0.5, lambda: observed.append(h.cpu_busy))

    h.start = boot
    sim.run()
    # free before; the completion callback runs with the CPU already free
    # so it can chain another occupy
    assert observed == [False, False]


def test_inbox_size_visible():
    sim, hosts = make(2)

    class Burst(SimProcess):
        def start(self):
            for k in range(3):
                self.send(1, f"m{k}")

    sim2 = Simulator(uniform_network(latency=1e-4, handler_cost=1e-2),
                     seed=1)
    sim2.add_process(Burst(0))
    sink = sim2.add_process(Host(1))
    sim2.run()
    assert len(sink.log) == 3
    # with a slow handler, messages arrived faster than they were absorbed
    gaps = [b - a for (a, _), (b, _) in zip(sink.log, sink.log[1:])]
    assert all(g == pytest.approx(1e-2) for g in gaps)


def test_call_at_past_rejected():
    sim, (h,) = make()

    def boot():
        h.call_after(1.0, lambda: check())

    def check():
        with pytest.raises(SimRuntimeError):
            h.call_at(0.5, lambda: None)

    h.start = boot
    sim.run()


def test_repr():
    assert "Host" in repr(Host(3))
