"""The SHA-1 mixing mode: correctness + statistical equivalence.

This is the evidence behind DESIGN.md's RNG substitution: the benchmark's
properties do not depend on whether node states mix through SplitMix64 or
SHA-1 — tree sizes concentrate identically, and the whole distributed
stack behaves the same way on either.
"""

import numpy as np
import pytest

from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, run_once
from repro.sim.errors import SimConfigError
from repro.uts.rng import sha1_child_states, sha1_decide_unit
from repro.uts.sequential import count_tree
from repro.uts.tree import UTSParams


def test_rng_field_validated():
    with pytest.raises(SimConfigError):
        UTSParams(rng="md5")


def test_sha1_streams_deterministic_and_distinct():
    s = np.arange(100, dtype=np.uint64)
    assert np.array_equal(sha1_decide_unit(s), sha1_decide_unit(s))
    kids = sha1_child_states(s, np.full(100, 2, dtype=np.int64))
    assert len(np.unique(kids)) == 200


def test_sha1_decide_uniform():
    s = np.arange(20_000, dtype=np.uint64)
    u = sha1_decide_unit(s)
    assert (0 <= u).all() and (u < 1).all()
    assert abs(u.mean() - 0.5) < 0.01


def test_sha1_tree_counts_consistent():
    p = UTSParams(b0=50, q=0.44, m=2, root_seed=7, rng="sha1")
    a = count_tree(p)
    b = count_tree(p)
    assert a == b
    # differs from the splitmix tree of the same parameters
    c = count_tree(UTSParams(b0=50, q=0.44, m=2, root_seed=7))
    assert a.nodes != c.nodes


def test_modes_statistically_equivalent():
    """Mean tree size over seeds matches between mixers (same law)."""
    sizes = {"splitmix": [], "sha1": []}
    for rng in sizes:
        for seed in range(8):
            p = UTSParams(b0=60, q=0.40, m=2, root_seed=seed, rng=rng)
            sizes[rng].append(count_tree(p).nodes)
    m_split = np.mean(sizes["splitmix"])
    m_sha = np.mean(sizes["sha1"])
    # E[size] = 1 + b0/(1-mq) = 301; both means within 15%
    expected = 1 + 60 / (1 - 0.8)
    assert abs(m_split - expected) / expected < 0.15
    assert abs(m_sha - expected) / expected < 0.15


def test_sha1_mode_end_to_end():
    p = UTSParams(b0=30, q=0.42, m=2, root_seed=3, rng="sha1")
    expected = count_tree(p).nodes
    for proto in ("BTD", "RWS"):
        r = run_once(RunConfig(protocol=proto, n=8, dmax=3, quantum=32,
                               seed=2),
                     UTSApplication(p))
        assert r.total_units == expected
