"""Unit tests for the p2p data plane (:mod:`repro.runtime.mesh`) and the
supervisor's membership :class:`~repro.runtime.supervisor.Registry`.

These pin the handshake/registry protocol without spawning processes:
meshes talk to each other over real loopback sockets inside one process,
so the early-frame buffering, peer-hello identification and sender-side
partition behaviour are exercised on the actual transport.
"""

from __future__ import annotations

import time

import pytest

from repro.runtime.mesh import PeerMesh, open_peer_listener
from repro.runtime.supervisor import LiveConfig, Registry
from repro.sim.errors import SimConfigError
from repro.runtime.supervisor import LiveRuntimeError


def make_mesh(pid: int) -> PeerMesh:
    listener, endpoint = open_peer_listener("tcp", "127.0.0.1", 0, None, pid)
    mesh = PeerMesh(pid, listener)
    mesh.endpoint = endpoint   # test-side convenience
    return mesh


def pump(mesh: PeerMesh, until, *senders: PeerMesh,
         timeout: float = 5.0) -> list[dict]:
    """Accept + service everything until ``until(mesh, delivered)``.

    ``senders`` are flushed every round: :meth:`PeerMesh.send` only
    queues (bytes must never leave ahead of the spool commit), so the
    test plays the reactor's post-commit ``flush_all`` role here.
    """
    delivered: list[dict] = []
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        for s in senders:
            s.flush_all()
        mesh.accept()
        for conn in list(mesh.open_conns()):
            delivered.extend(mesh.service(conn))
        if until(mesh, delivered):
            return delivered
        time.sleep(0.005)
    raise AssertionError(f"pump timed out; delivered={delivered}, "
                         f"pending={mesh.pending_frames}")


def msg(src: int, dst: int, seq: int = 0) -> dict:
    return {"t": "msg", "src": src, "dst": dst, "kind": "STEAL_REQ",
            "p": seq, "b": 12}


class TestPeerMeshDataPlane:
    def test_frames_flow_between_introduced_peers(self):
        a, b = make_mesh(0), make_mesh(1)
        try:
            a.add_member(1, b.endpoint)
            b.add_member(0, a.endpoint)
            a.send(msg(0, 1))
            got = pump(b, lambda m, d: d, a)
            assert [f["p"] for f in got] == [0]
            assert a.link_frames[1] == 1 and a.link_bytes[1] == 12
        finally:
            a.close()
            b.close()

    def test_early_frames_buffer_until_membership_arrives(self):
        # A joiner can dial a peer before the supervisor's join
        # announcement reaches that peer (two independent streams): the
        # frames must buffer, invisible to the protocol, and replay in
        # arrival order the moment the control plane introduces the pid.
        joiner, old = make_mesh(4), make_mesh(1)
        try:
            joiner.add_member(1, old.endpoint)
            # `old` has NOT been told about pid 4
            joiner.send(msg(4, 1, seq=7))
            joiner.send(msg(4, 1, seq=8))
            pump(old, lambda m, d: len(m.pending_frames.get(4, ())) == 2,
                 joiner)
            assert old.pending_frames[4][0]["p"] == 7   # arrival order kept
            replay = old.add_member(4, None)
            assert [f["p"] for f in replay] == [7, 8]
            assert old.pending_frames == {}             # drained, not copied
        finally:
            joiner.close()
            old.close()

    def test_peer_hello_identifies_inbound_connection(self):
        a, b = make_mesh(0), make_mesh(1)
        try:
            a.add_member(1, b.endpoint)
            b.add_member(0, a.endpoint)
            a.send(msg(0, 1))           # dial carries the ph introduction
            pump(b, lambda m, d: d, a)
            # b learned the dialler's pid and reuses the inbound
            # connection as its route back (b never dialled itself)
            assert 0 in b.by_pid
            b.send(msg(1, 0, seq=3))
            got = pump(a, lambda m, d: d, b)
            assert [f["p"] for f in got] == [3]
        finally:
            a.close()
            b.close()

    def test_concurrent_cross_dial_keeps_per_direction_streams(self):
        a, b = make_mesh(0), make_mesh(1)
        try:
            a.add_member(1, b.endpoint)
            b.add_member(0, a.endpoint)
            a.send(msg(0, 1, seq=1))    # a dials b
            b.send(msg(1, 0, seq=2))    # b dials a concurrently
            got_b = pump(b, lambda m, d: d, a)
            got_a = pump(a, lambda m, d: d, b)
            assert [f["p"] for f in got_b] == [1]
            assert [f["p"] for f in got_a] == [2]
            # each side keeps using the connection IT dialled outbound
            assert a.by_pid[1] is not b.by_pid[0]
            a.send(msg(0, 1, seq=9))
            assert [f["p"] for f in pump(b, lambda m, d: d, a)] == [9]
        finally:
            a.close()
            b.close()

    def test_partition_window_drops_sender_side(self):
        a, b = make_mesh(0), make_mesh(1)
        try:
            a.add_member(1, b.endpoint)
            b.add_member(0, a.endpoint)
            a.partitions = ((frozenset({1}), 0.0, 30.0),)
            a.arm()
            a.send(msg(0, 1))           # crosses the cut: dies at the sender
            assert a.part_drops == 1
            assert 1 not in a.link_frames      # never counted as sent
            # same-side traffic is unaffected by the window
            a.partitions = ((frozenset({0, 1}), 0.0, 30.0),)
            a.send(msg(0, 1, seq=5))
            assert a.part_drops == 1
            assert [f["p"] for f in pump(b, lambda m, d: d, a)] == [5]
        finally:
            a.close()
            b.close()

    def test_drop_peer_drains_last_frames_and_forgets(self):
        a, b = make_mesh(0), make_mesh(1)
        try:
            a.add_member(1, b.endpoint)
            b.add_member(0, a.endpoint)
            a.send(msg(0, 1, seq=1))
            pump(b, lambda m, d: d, a)
            a.send(msg(0, 1, seq=2))    # in flight when the death lands
            a.flush_all()
            time.sleep(0.05)
            leftovers = b.drop_peer(0)
            assert [f["p"] for f in leftovers] == [2]
            assert 0 not in b.by_pid and 0 not in b.members
        finally:
            a.close()
            b.close()


class TestRegistry:
    def cfg(self, **kw) -> LiveConfig:
        base = dict(protocol="BTD", n=4, p2p=True, fault_tolerance=True,
                    joins=({"pid": 4, "after_s": 0.1},))
        base.update(kw)
        return LiveConfig(**base)

    def test_duplicate_registration_is_refused(self):
        reg = Registry(self.cfg())
        reg.register(1, {"kind": "tcp", "host": "h", "port": 1})
        with pytest.raises(LiveRuntimeError, match="duplicate hello"):
            reg.register(1, {"kind": "tcp", "host": "h", "port": 2})
        # the first registration survives the rejected impostor
        assert reg.endpoints[1]["port"] == 1

    def test_registration_requires_an_endpoint(self):
        reg = Registry(self.cfg())
        with pytest.raises(LiveRuntimeError, match="endpoint"):
            reg.register(2, None)

    def test_assign_parent_is_deterministic_and_valid(self):
        # TD trees keep packing by the degree bound...
        reg = Registry(self.cfg(dmax=3))
        assert reg.assign_parent(4) == 1
        # ...random trees keep drawing uniform earlier nodes, stable per
        # (seed, pid) so every member grafts the identical leaf
        cfg = self.cfg(protocol="BTR", seed=7)
        parents = {Registry(cfg).assign_parent(5) for _ in range(5)}
        assert len(parents) == 1
        assert 0 <= parents.pop() < 5

    def test_peers_excludes_the_departed(self):
        reg = Registry(self.cfg())
        for pid in range(3):
            reg.register(pid, {"kind": "tcp", "host": "h", "port": pid})
        reg.mark_dead(1)
        reg.mark_left(2)
        assert set(reg.peers()) == {0}


class TestElasticMembershipConfig:
    def test_joins_require_p2p(self):
        with pytest.raises(SimConfigError, match="p2p"):
            LiveConfig(n=4, fault_tolerance=True,
                       joins=({"pid": 4, "after_s": 0.1},))

    def test_joins_require_fault_tolerance(self):
        with pytest.raises(SimConfigError, match="fault_tolerance"):
            LiveConfig(n=4, p2p=True, joins=({"pid": 4, "after_s": 0.1},))

    def test_join_pids_must_be_consecutive_from_n(self):
        with pytest.raises(SimConfigError, match="consecutive"):
            LiveConfig(n=4, p2p=True, fault_tolerance=True,
                       joins=({"pid": 6, "after_s": 0.1},))

    def test_leave_cannot_target_root_or_kill_victim(self):
        with pytest.raises(SimConfigError, match="non-root"):
            LiveConfig(n=4, p2p=True, fault_tolerance=True,
                       leaves=({"pid": 0, "after_s": 0.1},))
        with pytest.raises(SimConfigError, match="both leave and be killed"):
            LiveConfig(n=4, p2p=True, fault_tolerance=True,
                       kills=({"pid": 2, "after_s": 0.5},),
                       leaves=({"pid": 2, "after_s": 0.1},))

    def test_membership_needs_a_tree_protocol(self):
        with pytest.raises(SimConfigError, match="tree protocol"):
            LiveConfig(protocol="RWS", n=4, p2p=True, fault_tolerance=True,
                       joins=({"pid": 4, "after_s": 0.1},))

    def test_partition_sides_may_include_joiner_slots(self):
        cfg = LiveConfig(protocol="BTD", n=4, p2p=True,
                         fault_tolerance=True,
                         joins=({"pid": 4, "after_s": 0.1},),
                         partitions=({"side": [4], "start_s": 0.2,
                                      "end_s": 0.4},))
        assert cfg.slots == 5
