"""Engine + process tests: delivery, occupancy, deadlock detection."""

import pytest

from repro.sim import (Message, SimConfigError, SimDeadlockError, SimProcess,
                       Simulator, uniform_network)


class Sink(SimProcess):
    """Records (time, kind) of everything it absorbs."""

    def __init__(self, pid):
        super().__init__(pid)
        self.log = []

    def on_message(self, msg: Message):
        self.log.append((self.now, msg.kind))


class Sender(SimProcess):
    def __init__(self, pid, dst, kinds):
        super().__init__(pid)
        self.dst, self.kinds = dst, kinds

    def start(self):
        for k in self.kinds:
            self.send(self.dst, k)


def _net(**kw):
    kw.setdefault("latency", 1e-4)
    kw.setdefault("handler_cost", 1e-5)
    return uniform_network(**kw)


def test_requires_processes():
    with pytest.raises(SimConfigError):
        Simulator(_net()).run()


def test_pid_order_enforced():
    sim = Simulator(_net())
    with pytest.raises(SimConfigError):
        sim.add_process(Sink(1))


def test_single_shot_run():
    sim = Simulator(_net())
    sim.add_process(Sink(0))
    sim.run()
    with pytest.raises(SimConfigError):
        sim.run()


def test_message_delivery_and_handler_cost():
    sim = Simulator(_net())
    sim.add_process(Sender(0, 1, ["A"]))
    sink = sim.add_process(Sink(1))
    sim.run()
    # arrival at latency + size/bw, handled handler_cost later
    (t, k), = sink.log
    assert k == "A"
    assert t == pytest.approx(1e-4 + 64 / sim.network.bandwidth + 1e-5)
    assert sink.stats.handler_time == pytest.approx(1e-5)
    assert sink.stats.msgs_received == 1


def test_messages_serialize_on_one_cpu():
    sim = Simulator(_net())
    sim.add_process(Sender(0, 1, ["A", "B", "C"]))
    sink = sim.add_process(Sink(1))
    sim.run()
    times = [t for t, _ in sink.log]
    kinds = [k for _, k in sink.log]
    assert kinds == ["A", "B", "C"]
    # same arrival instant, but handling occupies the CPU sequentially
    assert times[1] - times[0] == pytest.approx(1e-5)
    assert times[2] - times[1] == pytest.approx(1e-5)


def test_occupy_defers_message_handling():
    class Busy(Sink):
        def start(self):
            self.occupy(1.0, lambda: None)

    sim = Simulator(_net())
    sim.add_process(Sender(0, 1, ["A"]))
    busy = sim.add_process(Busy(1))
    sim.run()
    (t, _), = busy.log
    assert t == pytest.approx(1.0 + 1e-5)


def test_occupy_chaining():
    class Chain(SimProcess):
        def __init__(self, pid):
            super().__init__(pid)
            self.marks = []

        def start(self):
            self.occupy(1.0, self._first)

        def _first(self):
            self.marks.append(self.now)
            self.occupy(2.0, lambda: self.marks.append(self.now))

    sim = Simulator(_net())
    p = sim.add_process(Chain(0))
    sim.run()
    assert p.marks == [pytest.approx(1.0), pytest.approx(3.0)]


def test_on_cpu_free_fires_after_drain():
    class Counter(Sink):
        def __init__(self, pid):
            super().__init__(pid)
            self.freed = 0

        def on_cpu_free(self):
            self.freed += 1

    sim = Simulator(_net())
    sim.add_process(Sender(0, 1, ["A", "B"]))
    c = sim.add_process(Counter(1))
    sim.run()
    assert c.freed >= 1
    assert len(c.log) == 2


def test_deadlock_detection():
    class Stuck(SimProcess):
        def finished(self):
            return False

    sim = Simulator(_net())
    sim.add_process(Stuck(0))
    with pytest.raises(SimDeadlockError):
        sim.run()


def test_debug_tags_off_by_default():
    """Hot-path events carry no tag strings unless debug is on."""
    sim = Simulator(_net())
    sim.add_process(Sender(0, 1, ["A", "B"]))
    sim.add_process(Sink(1))
    sim.run(max_events=0)
    assert len(sim.queue) > 0
    assert all(tag == "" for _, tag in sim.queue.snapshot_tags())


def test_debug_tags_name_pending_events():
    """With debug=True, snapshot_tags names every pending hot-path event."""
    class Pinger(SimProcess):
        def start(self):
            self.send(0, "PING")
            self.call_after(1.0, lambda: None)

    sim = Simulator(_net(), debug=True)
    sim.add_process(Pinger(0))
    sim.run(max_events=0)
    tags = [tag for _, tag in sim.queue.snapshot_tags()]
    assert any(tag.startswith("deliver:PING") for tag in tags)
    assert any(tag.startswith("timer@") for tag in tags)


def test_deadlock_report_hints_at_debug_flag():
    class Stuck(SimProcess):
        def finished(self):
            return False

    sim = Simulator(_net())
    sim.add_process(Stuck(0))
    with pytest.raises(SimDeadlockError) as exc:
        sim.run()
    assert "debug=True" in str(exc.value)


def test_message_has_no_dict():
    msg = Message(0, 1, "A")
    assert not hasattr(msg, "__dict__")
    with pytest.raises(AttributeError):
        msg.extra = 1
    assert Message(0, 1, "A", size_bytes=1).size_bytes >= 64
    # equality ignores send_time (stamped in transit)
    a, b = Message(0, 1, "A"), Message(0, 1, "A", send_time=5.0)
    assert a == b


def test_max_time_truncates_without_deadlock_error():
    class Ticker(SimProcess):
        def start(self):
            self._tick()

        def _tick(self):
            self.call_after(1.0, self._tick)

        def finished(self):
            return False

    sim = Simulator(_net())
    sim.add_process(Ticker(0))
    stats = sim.run(max_time=10.5)
    assert stats.events_fired == 10


def test_max_events_truncates():
    class Ticker(SimProcess):
        def start(self):
            self._tick()

        def _tick(self):
            self.call_after(1.0, self._tick)

        def finished(self):
            return False

    sim = Simulator(_net())
    sim.add_process(Ticker(0))
    stats = sim.run(max_events=5)
    assert stats.events_fired == 5


def test_stop_aborts():
    class Stopper(SimProcess):
        def start(self):
            self.call_after(1.0, self.sim.stop)
            self.call_after(2.0, lambda: (_ for _ in ()).throw(AssertionError))

        def finished(self):
            return False

    sim = Simulator(_net())
    sim.add_process(Stopper(0))
    sim.run()  # must not raise


def test_unknown_destination_rejected():
    class Bad(SimProcess):
        def start(self):
            self.send(99, "X")

    sim = Simulator(_net())
    sim.add_process(Bad(0))
    from repro.sim.errors import SimRuntimeError
    with pytest.raises(SimRuntimeError):
        sim.run()


def test_determinism_across_runs():
    def one_run():
        sim = Simulator(_net(), seed=11)
        sim.add_process(Sender(0, 1, [f"k{i}" for i in range(20)]))
        sink = sim.add_process(Sink(1))
        sim.run()
        return sink.log

    assert one_run() == one_run()


def test_sent_stats_accounted():
    sim = Simulator(_net())
    sim.add_process(Sender(0, 1, ["A", "B"]))
    sim.add_process(Sink(1))
    st = sim.run()
    assert st.per_process[0].msgs_sent == 2
    assert st.per_process[0].bytes_sent == 2 * 64
    assert st.total_msgs == 2


def test_unreached_limit_does_not_suppress_deadlock():
    """Regression: passing max_time/max_events must not blanket-mark the
    run truncated.  A process that never finishes while the queue drains
    naturally is a deadlock, limit or no limit."""
    class Stuck(SimProcess):
        def finished(self):
            return False

    for kwargs in ({"max_time": 1e9}, {"max_events": 10 ** 9},
                   {"max_time": 1e9, "max_events": 10 ** 9}):
        sim = Simulator(_net())
        sim.add_process(Stuck(0))
        with pytest.raises(SimDeadlockError):
            sim.run(**kwargs)


def test_tripped_limit_still_suppresses_deadlock():
    """When the limit actually cuts work short, no deadlock is raised."""
    class Ticker(SimProcess):
        def start(self):
            self._tick()

        def _tick(self):
            self.call_after(1.0, self._tick)

        def finished(self):
            return False

    sim = Simulator(_net())
    sim.add_process(Ticker(0))
    stats = sim.run(max_events=3)  # events remain pending -> truncated
    assert stats.events_fired == 3

    sim = Simulator(_net())
    sim.add_process(Ticker(0))
    sim.run(max_time=2.5)  # next timer is beyond the horizon -> truncated


def test_exact_limit_with_drained_queue_is_not_truncated():
    """Hitting max_events exactly as the queue empties is a natural end:
    the deadlock check must still apply to unfinished processes."""
    class Stuck(SimProcess):
        def start(self):
            self.call_after(1.0, lambda: None)

        def finished(self):
            return False

    sim = Simulator(_net())
    sim.add_process(Stuck(0))
    with pytest.raises(SimDeadlockError):
        sim.run(max_events=1)  # fires the only event, queue now empty
