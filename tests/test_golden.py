"""Golden regression values for canonical runs.

The simulator is bit-deterministic, so these exact numbers must hold on any
machine. A failure here means the *protocol or cost model changed* — which
may be intentional, but must be a conscious decision: re-measure and update
the constants together with EXPERIMENTS.md.
"""

import pytest

from repro.apps.bnb_app import BnBApplication
from repro.apps.uts_app import UTSApplication
from repro.bnb.taillard import scaled_instance
from repro.experiments.runner import RunConfig, run_once
from repro.uts.params import PRESETS

GOLDEN_UTS = {
    # protocol -> (makespan, total_msgs, total_steals)
    "TD": (0.009430575999999984, 726, 294),
    "BTD": (0.008520427999999953, 1701, 703),
    "RWS": (0.008338983999999987, 1587, 627),
    "LIFELINE": (0.008115297999999981, 1188, 472),
}

GOLDEN_BNB = {
    # protocol -> (makespan, total_units, optimum)
    "BTD": (0.02773038399999998, 443, 712),
    "MW": (0.015330567999999989, 760, 712),
    "AHMW": (0.047580488000000046, 242, 712),
}


@pytest.mark.parametrize("proto", sorted(GOLDEN_UTS))
def test_golden_uts(proto):
    preset = PRESETS["bin_tiny"]
    r = run_once(RunConfig(protocol=proto, n=24, dmax=4, quantum=64,
                           seed=123),
                 UTSApplication(preset.params))
    makespan, msgs, steals = GOLDEN_UTS[proto]
    assert r.total_units == preset.nodes
    assert r.makespan == pytest.approx(makespan, abs=1e-12)
    assert r.total_msgs == msgs
    assert r.total_steals == steals


@pytest.mark.parametrize("proto", sorted(GOLDEN_BNB))
def test_golden_bnb(proto):
    inst = scaled_instance(2, n_jobs=8, n_machines=8)
    r = run_once(RunConfig(protocol=proto, n=12, quantum=16, seed=123,
                           dmax=3),
                 BnBApplication(inst, warm_start=True))
    makespan, units, optimum = GOLDEN_BNB[proto]
    assert r.optimum == optimum
    assert r.total_units == units
    assert r.makespan == pytest.approx(makespan, abs=1e-12)
