"""Sharded parallel engine: partition invariants and serial==sharded goldens.

The correctness bar for :mod:`repro.sim.shard` is *bit-identity* with the
serial fused engine — same makespan, node counts, steal counts, message
counts, RNG draws — not statistical agreement. The goldens here pin that
for every protocol family x application, clean and faulted. Configurations
use ``jitter > 0``: jitter draws are keyed per (src, send index) so shards
reproduce them exactly, and the noise breaks the one residual ambiguity
(events pushed at the *same* virtual instant from different shards, the
same simultaneity scope already documented for quantum fusion).
"""

import math
from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.synthetic import SyntheticApplication
from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, run_instrumented
from repro.sim.errors import SimConfigError
from repro.sim.faults import FaultPlan
from repro.sim.network import ClusterSpec, NetworkModel, uniform_network
from repro.sim.shard import partition_fleet, run_sharded
from repro.sim.stats import _FLOAT_FIELDS, _INT_FIELDS, RunStats
from repro.uts.params import PRESETS

MINI = PRESETS["bin_mini"].params


def _synth(total=2000):
    return SyntheticApplication(total, unit_cost=1e-6)


def _uts():
    return UTSApplication(MINI)


def _bnb():
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.taillard import scaled_instance
    return BnBApplication(scaled_instance(5, n_jobs=6, n_machines=5))


APPS = {"synthetic": _synth, "uts": _uts, "bnb": _bnb}


def assert_bit_identical(cfg, builder, shards):
    """Serial fused run and sharded run agree on every observable."""
    res_s, stats_s = run_instrumented(cfg, builder())
    res_p, stats_p, walls = run_sharded(cfg, builder, shards)
    assert len(walls) == min(shards, cfg.n) or walls == [0.0]
    assert res_p.makespan == res_s.makespan
    assert res_p.work_done_time == res_s.work_done_time
    assert res_p.total_units == res_s.total_units
    assert res_p.total_msgs == res_s.total_msgs
    assert res_p.total_steals == res_s.total_steals
    assert res_p.optimum == res_s.optimum
    assert res_p.optimum_perm == res_s.optimum_perm
    # events_equivalent is the canonical event count; raw events /
    # macro_events / fused_quanta measure how fusion *batched* them,
    # and window horizons legitimately split fusion runs differently
    assert res_p.events_equivalent == res_s.events_equivalent
    assert res_p.redundancy == res_s.redundancy
    assert stats_p.fault_totals() == stats_s.fault_totals()
    for pid in range(cfg.n):
        a, b = stats_s.per_process[pid], stats_p.per_process[pid]
        for name in _INT_FIELDS + _FLOAT_FIELDS:
            assert getattr(b, name) == getattr(a, name), (pid, name)
    return res_p


# -- partitioning ------------------------------------------------------------

@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS", "LIFELINE"])
def test_partition_covers_fleet(proto):
    cfg = RunConfig(protocol=proto, n=50, dmax=4, seed=7)
    owner = partition_fleet(cfg, 4)
    assert len(owner) == 50
    assert set(owner) == {0, 1, 2, 3}          # no empty shard at this size
    assert owner[0] == 0                        # root pinned to shard 0
    assert owner == partition_fleet(cfg, 4)     # deterministic


def test_partition_respects_subtrees():
    """TD units are whole subtrees: every pid shares a shard with its
    parent unless the parent's subtree was too big to be one unit."""
    from repro.overlay.tree import deterministic_tree
    n, shards = 60, 3
    cfg = RunConfig(protocol="TD", n=n, dmax=3, seed=0)
    owner = partition_fleet(cfg, shards)
    tree = deterministic_tree(n, 3)
    target = -(-n // shards)
    for pid in range(1, n):
        parent = tree.parent[pid]
        if tree.subtree_size[pid] <= target and owner[pid] != owner[parent]:
            # a cut above pid is only legal where the parent's subtree
            # exceeded the unit target (the parent became a singleton)
            assert tree.subtree_size[parent] > target


def test_partition_cluster_refinement():
    """With a placed multi-cluster network no unit straddles clusters, and
    the partition still covers the fleet."""
    net = NetworkModel(clusters=(ClusterSpec("a", 64), ClusterSpec("b", 64)),
                       c2_threshold=8)
    net.place(40, seed=1)
    cfg = RunConfig(protocol="TD", n=40, dmax=3, seed=1, network=net)
    owner = partition_fleet(cfg, 4, network=net)
    assert len(owner) == 40 and set(owner) <= {0, 1, 2, 3}
    assert owner[0] == 0


# -- golden matrix: serial == sharded ---------------------------------------

@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS"])
@pytest.mark.parametrize("app", ["synthetic", "uts", "bnb"])
def test_golden_serial_equals_sharded(proto, app):
    cfg = RunConfig(protocol=proto, n=16, dmax=3, quantum=16, seed=42,
                    jitter=1.5, speed_spread=0.3)
    assert_bit_identical(cfg, APPS[app], shards=3)


@pytest.mark.parametrize("app", ["synthetic", "uts"])
def test_golden_faulted(app):
    """Crash-stop + loss + duplication, crashes in different shards."""
    plan = FaultPlan(crashes=((3, 4e-4), (11, 9e-4)), loss=0.05, dup=0.03)
    cfg = RunConfig(protocol="TD", n=16, dmax=3, quantum=16, seed=42,
                    jitter=1.5, faults=plan)
    res = assert_bit_identical(cfg, APPS[app], shards=3)
    assert res.crashes == 2


@pytest.mark.parametrize("proto", ["TD", "BTD", "RWS"])
@pytest.mark.parametrize("app", ["synthetic", "uts"])
def test_golden_partitioned_and_gray(proto, app):
    """Partition + gray failures across shard boundaries stay bit-identical:
    cut tests are pure functions of (src, dst, now), gray drops are keyed
    per (rule, sender, send index), and slowed pids opt out of fusion the
    same way serially and sharded."""
    plan = FaultPlan(
        partitions=(((8, 9, 10, 11, 12, 13, 14, 15), 1e-3, 7e-3),),
        slowdowns=((5, 0.0, 6e-3, 6.0),),
        gray_links=((None, 5, 0.0, 6e-3, 3.0, 0.4),
                    (5, None, 0.0, 6e-3, 3.0, 0.4)))
    cfg = RunConfig(protocol=proto, n=16, dmax=3, quantum=16, seed=42,
                    jitter=1.5, faults=plan, ack_timeout=5e-4,
                    breaker_threshold=3)
    res = assert_bit_identical(cfg, APPS[app], shards=3)
    assert res.msgs_lost > 0                  # the cut actually dropped


# -- window mechanics --------------------------------------------------------

def test_run_window_horizon_is_exclusive():
    """An event at exactly the horizon must NOT fire in the window — it is
    the next window's first event (the conservative-lookahead contract:
    a message sent at t arrives no earlier than t + min_delay == horizon,
    so firing *at* the horizon could miss it)."""
    from repro.sim.engine import Simulator

    class _Idle:
        pid, sim = 0, None

        def start(self):
            pass

        def finished(self):
            return True

        def _arrive(self, msg):
            raise AssertionError("no deliveries expected")

    sim = Simulator(uniform_network(latency=1e-4), seed=0)
    sim.add_process(_Idle())
    fired = []
    sim.begin_windows()
    sim.queue.push(1.0, partial(fired.append, 1.0))
    sim.queue.push(2.0, partial(fired.append, 2.0))
    assert sim.run_window(2.0) == 2.0
    assert fired == [1.0]
    assert sim.run_window(math.nextafter(2.0, math.inf)) is None
    assert fired == [1.0, 2.0]


def test_exact_lookahead_boundary_delivery():
    """Infinite bandwidth + zero handler cost makes every cross-shard
    arrival land at exactly ``send_time + min_delay`` — the lookahead
    boundary itself. The run must still terminate and conserve work."""
    net = NetworkModel(clusters=(ClusterSpec("flat", 64),),
                       lat_intra=1e-4, lat_inter=1e-4,
                       bandwidth=math.inf, handler_cost=0.0, jitter=1.5)
    cfg = RunConfig(protocol="TD", n=8, dmax=3, quantum=16, seed=3,
                    network=net)
    assert_bit_identical(cfg, partial(_synth, 1500), shards=2)


def test_one_shard_per_pid_empty_windows():
    """shards == n maximises idle shards: most windows are empty for most
    shards (their bid is None until work arrives). Still bit-identical."""
    cfg = RunConfig(protocol="TD", n=8, dmax=3, quantum=16, seed=5,
                    jitter=1.5)
    assert_bit_identical(cfg, partial(_synth, 1500), shards=8)


def test_crashed_shard_goes_quiet():
    """Crashing every pid of one shard early leaves that shard with no
    events for the rest of the run; the window loop must not wedge on its
    permanently-None bid."""
    cfg0 = RunConfig(protocol="TD", n=12, dmax=3, quantum=16, seed=9)
    owner = partition_fleet(cfg0, 3)
    victims = tuple((pid, 3e-4) for pid in range(12)
                    if owner[pid] == 2 and pid != 0)
    assert victims, "partition should give shard 2 some non-root pids"
    cfg = RunConfig(protocol="TD", n=12, dmax=3, quantum=16, seed=9,
                    jitter=1.5, faults=FaultPlan(crashes=victims))
    res = assert_bit_identical(cfg, partial(_synth, 1500), shards=3)
    assert res.crashes == len(victims)
    assert res.total_units == 1500


# -- API edges ---------------------------------------------------------------

def test_shards_clamped_to_n():
    cfg = RunConfig(protocol="TD", n=4, dmax=3, quantum=16, seed=2,
                    jitter=1.5)
    res, _stats, walls = run_sharded(cfg, partial(_synth, 800), 16)
    assert len(walls) == 4
    assert res.total_units == 800


def test_max_events_rejected():
    cfg = RunConfig(protocol="TD", n=8, max_events=100)
    with pytest.raises(SimConfigError, match="max_events"):
        run_sharded(cfg, _synth, 2)


def test_zero_min_delay_rejected():
    cfg = RunConfig(protocol="TD", n=8,
                    network=uniform_network(latency=0.0))
    with pytest.raises(SimConfigError, match="min_delay"):
        run_sharded(cfg, _synth, 2)


def test_single_shard_falls_back_to_serial():
    cfg = RunConfig(protocol="BTD", n=8, dmax=3, quantum=16, seed=4)
    res_p, _stats, walls = run_sharded(cfg, partial(_synth, 1000), 1)
    assert walls == [0.0]
    res_s, _ = run_instrumented(cfg, _synth(1000))
    assert (res_p.makespan, res_p.total_msgs) == (
        res_s.makespan, res_s.total_msgs)


def test_columnar_merge_path(monkeypatch):
    """Force the columnar RunStats representation at tiny n so the numpy
    branch of merge_shard_stats is exercised without a 4096-pid run."""
    pytest.importorskip("numpy")
    monkeypatch.setattr(RunStats, "COLUMNAR_THRESHOLD", 4)
    cfg = RunConfig(protocol="TD", n=10, dmax=3, quantum=16, seed=6,
                    jitter=1.5)
    assert_bit_identical(cfg, partial(_synth, 1200), shards=2)


def test_trace_merge_matches_serial():
    """Per-shard trace samples merge into the serial timeline: identical
    sample multisets, ordered by (time, pid) — per-pid order preserved,
    cross-pid same-time interleaving the only (documented) freedom."""
    from repro.sim.trace import Tracer
    cfg = RunConfig(protocol="BTD", n=10, dmax=3, quantum=16, seed=8,
                    jitter=1.5)
    tr_s, tr_p = Tracer(), Tracer()
    run_instrumented(cfg, _synth(1500), tracer=tr_s)
    run_sharded(cfg, partial(_synth, 1500), 3, tracer=tr_p)
    key = lambda s: (s.time, s.pid, s.kind, s.value)  # noqa: E731
    assert sorted(tr_p.samples, key=key) == sorted(tr_s.samples, key=key)
    # merged stream itself is (time, pid)-sorted for downstream analyzers
    order = [(s.time, s.pid) for s in tr_p.samples]
    assert order == sorted(order)


# -- property: randomized configs -------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(proto=st.sampled_from(["TD", "BTD", "TR", "RWS"]),
       n=st.integers(min_value=4, max_value=12),
       shards=st.integers(min_value=2, max_value=4),
       seed=st.integers(min_value=0, max_value=200),
       crash=st.booleans())
def test_property_serial_equals_sharded(proto, n, shards, seed, crash):
    faults = (FaultPlan(crashes=((n - 1, 5e-4),), loss=0.02, dup=0.01)
              if crash else None)
    cfg = RunConfig(protocol=proto, n=n, dmax=3, quantum=16, seed=seed,
                    jitter=1.5, faults=faults)
    assert_bit_identical(cfg, partial(_synth, 1500), shards)
