"""Wire codec: tagged-JSON round trips and length-prefix framing edges.

The live transport may deliver any byte split — partial length prefixes,
frames spanning many ``recv`` calls, several frames in one chunk — and the
payload encoding must preserve exactly the Python shapes the protocols
rely on (tuples for fault-mode wave payloads, numpy ``uint64`` UTS states
above 2^53, work pieces). Everything here runs in-process: no sockets.
"""

import numpy as np
import pytest

from repro.bnb.work import BnBWork
from repro.runtime.codec import (FrameDecoder, MAX_FRAME_BYTES, WireError,
                                 from_wire, message_from_frame,
                                 message_to_frame, pack_frame, stats_from_wire,
                                 stats_to_wire, to_wire)
from repro.sim.messages import sized
from repro.sim.stats import ProcessStats
from repro.uts.params import PRESETS
from repro.uts.work import UTSWork

TINY = PRESETS["bin_tiny"].params


def roundtrip(obj):
    return from_wire(to_wire(obj))


# -- payload round trips -----------------------------------------------------

def test_scalars_and_containers_roundtrip():
    for obj in (None, True, False, 0, -7, 3.25, "x",
                [1, [2, 3]], (1, (2, "a")), {1: 2, "k": (3,)},
                frozenset({1, 2}), {4, 5}):
        back = roundtrip(obj)
        assert back == obj
        assert type(back) is type(obj)


def test_tuple_identity_survives():
    # TerminationWaves detects fault-mode waves via isinstance(payload,
    # tuple) — a tuple that comes back as a list changes protocol behavior
    back = roundtrip((3, frozenset({1, 2}), 7))
    assert isinstance(back, tuple)
    assert isinstance(back[1], frozenset)


def test_numpy_scalars_become_ints():
    assert roundtrip(np.uint64(2**60 + 3)) == 2**60 + 3
    assert roundtrip(np.int32(-5)) == -5
    assert roundtrip(np.float64(1.5)) == 1.5


def test_uts_work_roundtrip_exact():
    work = UTSWork.root(TINY)
    # grow a few nodes so the stacks are non-trivial
    from repro.apps.uts_app import UTSApplication
    app = UTSApplication(TINY)
    app.process(work, 50, None)
    states, depths = work.peek()
    back = roundtrip(work)
    b_states, b_depths = back.peek()
    assert np.array_equal(states, b_states)     # uint64-exact, > 2^53 ok
    assert np.array_equal(depths, b_depths)
    assert back.params == work.params


def test_uts_empty_work_roundtrip():
    back = roundtrip(UTSWork.empty(TINY))
    assert back.is_empty()


def test_bnb_work_roundtrip():
    work = BnBWork(6, [(0, 10), (700, 720)])
    back = roundtrip(work)
    assert back.n_jobs == 6
    assert back.as_tuples() == work.as_tuples()


def test_unencodable_object_raises():
    with pytest.raises(WireError):
        to_wire(object())
    with pytest.raises(WireError):
        from_wire({"__nope": 1})


def test_message_frame_roundtrip_preserves_size():
    msg = sized("WORK", 2, 5, (UTSWork.root(TINY), 1), 64)
    frame = message_to_frame(msg)
    back = message_from_frame(frame)
    assert (back.kind, back.src, back.dst) == ("WORK", 2, 5)
    assert back.size_bytes == msg.size_bytes    # sender-priced, carried
    assert isinstance(back.payload, tuple)


def test_stats_roundtrip_restores_inf_crash_time():
    ps = ProcessStats(pid=3, work_units=42, busy_time=1.5)
    doc = stats_to_wire(ps)
    assert "crash_time" not in doc              # inf is not JSON
    back = stats_from_wire(doc, 3)
    assert back.work_units == 42
    assert back.crash_time == float("inf")


# -- framing -----------------------------------------------------------------

def test_frames_survive_byte_at_a_time_delivery():
    frames = [{"a": 1}, {"b": [1, 2, 3]}, {"c": "x" * 500}]
    stream = b"".join(pack_frame(f) for f in frames)
    dec = FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(dec.feed(stream[i:i + 1]))
    assert out == frames
    assert dec.pending_bytes == 0


def test_many_frames_in_one_chunk():
    frames = [{"i": i} for i in range(50)]
    dec = FrameDecoder()
    out = list(dec.feed(b"".join(pack_frame(f) for f in frames)))
    assert out == frames


def test_message_larger_than_one_recv_chunk():
    big = {"blob": "y" * (200 * 1024)}          # > the 64 KiB recv chunk
    stream = pack_frame(big)
    dec = FrameDecoder()
    out = []
    for ofs in range(0, len(stream), 65536):
        out.extend(dec.feed(stream[ofs:ofs + 65536]))
    assert out == [big]


def test_zero_length_frame_rejected_both_ways():
    with pytest.raises(WireError):
        list(FrameDecoder().feed(b"\x00\x00\x00\x00"))
    import json as _json
    # the packer cannot even express one ({} packs to 2 bytes)
    assert len(_json.dumps({}).encode()) > 0


def test_peer_closing_mid_frame_detected():
    stream = pack_frame({"k": "v"})
    dec = FrameDecoder()
    list(dec.feed(stream[:len(stream) - 3]))    # torn tail
    with pytest.raises(WireError, match="mid-frame"):
        dec.close()


def test_clean_close_after_whole_frames():
    dec = FrameDecoder()
    list(dec.feed(pack_frame({"k": 1})))
    dec.close()                                  # no residue: fine


def test_oversized_length_prefix_rejected():
    import struct
    evil = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(WireError, match="exceeds"):
        list(FrameDecoder().feed(evil))


def test_undecodable_body_rejected():
    import struct
    with pytest.raises(WireError, match="undecodable"):
        list(FrameDecoder().feed(struct.pack(">I", 3) + b"\xff\xfe\xfd"))


def test_non_object_body_rejected():
    import struct
    body = b"[1,2]"
    with pytest.raises(WireError, match="object"):
        list(FrameDecoder().feed(struct.pack(">I", len(body)) + body))


def test_pickle_never_touches_the_wire():
    # the frame bytes of a WORK message must be plain UTF-8 JSON
    msg = sized("WORK", 0, 1, (UTSWork.root(TINY), 2), 64)
    raw = pack_frame(message_to_frame(msg))
    body = raw[4:]
    import json as _json
    _json.loads(body.decode("utf-8"))            # decodes as JSON
    assert b"pickle" not in body and not body.startswith(b"\x80")
