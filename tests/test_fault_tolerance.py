"""Self-healing under faults: exact work conservation, clean termination.

The oracle is an accounting identity. Every unit of work the tree
contains is, at the end of a faulted run, in exactly one of four places:

1. processed by a live worker (``stats.total_work_units``),
2. frozen in a crashed worker's local pool,
3. in flight in a crashed worker's reliable channel — a WORK transfer the
   receiver never logged (logged transfers were merged before the crash
   and are already counted in 1),
4. a ``crash_dropped`` piece: WORK that arrived at an already-terminated
   worker from a peer it knows is dead (the piece died with its owner;
   the survivor just records it for this oracle).

Draining 2-4 through the application and adding the units to 1 must
reproduce the sequential node count *exactly* — any protocol bug that
loses or duplicates work under loss, duplication or crashes breaks the
identity. On top of it: every surviving worker must reach ``terminated``
(the dead-set-aware waves actually converge).
"""

import pytest

from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, build_workers
from repro.sim import Simulator, grid5000
from repro.sim.faults import FaultPlan
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree

TINY = PRESETS["bin_tiny"].params
TINY_NODES = count_tree(TINY).nodes
MINI = PRESETS["bin_mini"].params
MINI_NODES = count_tree(MINI).nodes

#: Crash times must land inside bin_tiny's simulated makespan (~13 ms at
#: n=12) — later kills hit already-terminated workers and test nothing.
MID_RUN = (5e-4, 4e-3)


def drain(work, app, shared=None):
    """Sequentially finish a work pool, returning the units it held."""
    total = 0
    while not work.is_empty():
        out = app.process(work, 1 << 20, shared)
        if out.units <= 0:
            break
        total += out.units
    return total


def conserved_units(sim, workers, app, stats):
    """Total units per the four-place accounting identity (docstring)."""
    total = stats.total_work_units
    for w in workers:
        if not w._crashed:
            continue
        total += drain(w.work, app, w.shared)                       # 2
        ch = w._reliable
        if ch is None:
            continue
        for xf in ch._pending.values():                             # 3
            if xf.kind != "WORK":
                continue
            peer = sim.processes[xf.dst]._reliable
            if peer is None or not peer.was_delivered(w.pid, xf.seq):
                total += drain(xf.payload[0], app, w.shared)
    for w in workers:                                               # 4
        for piece in w.crash_dropped:
            total += drain(piece, app, w.shared)
    return total


def run_faulted(proto, n, plan, seed=0, dmax=3, app=None, **cfg_kwargs):
    """One faulted run; returns (conserved units, stats, workers)."""
    if app is None:
        app = UTSApplication(TINY)
    cfg = RunConfig(protocol=proto, n=n, dmax=dmax, seed=seed, faults=plan,
                    **cfg_kwargs)
    sim = Simulator(network=grid5000(), seed=seed, faults=plan)
    workers = build_workers(sim, cfg, app)
    stats = sim.run()
    assert all(w.terminated for w in workers if not w._crashed), \
        f"{proto}: surviving workers failed to terminate"
    return conserved_units(sim, workers, app, stats), stats, workers


# -- message loss ------------------------------------------------------------

@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS"])
@pytest.mark.parametrize("loss", [0.1, 0.2])
def test_conservation_under_loss(proto, loss):
    total, stats, _ = run_faulted(proto, 12, FaultPlan(loss=loss), seed=1)
    assert total == TINY_NODES
    lost, _, rexmit, _, _ = stats.fault_totals()
    assert lost > 0 and rexmit > 0


@pytest.mark.parametrize("proto", ["TD", "BTD", "RWS"])
def test_conservation_under_duplication(proto):
    total, stats, _ = run_faulted(proto, 12, FaultPlan(dup=0.1), seed=2)
    assert total == TINY_NODES
    assert stats.fault_totals()[1] > 0


# -- crash-stop failures -----------------------------------------------------

@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS"])
def test_conservation_under_crashes(proto):
    """n/4 mid-run kills: exact conservation, survivors terminate."""
    repairs_seen = 0
    for seed in (0, 1, 2):
        plan = FaultPlan.sample(16, crashes=4, seed=seed + 50,
                                window=MID_RUN)
        total, stats, _ = run_faulted(proto, 16, plan, seed=seed)
        assert total == TINY_NODES, (proto, seed)
        assert stats.fault_totals()[3] == 4
        repairs_seen += stats.fault_totals()[4]
    # kills inside MID_RUN hit live workers: the overlay must have spliced
    assert repairs_seen > 0, f"{proto}: no repair ever triggered"


@pytest.mark.parametrize("proto", ["TD", "BTD", "RWS"])
def test_conservation_under_combined_faults(proto):
    """Crashes, loss and duplication together — the worst case."""
    for seed in (3, 4):
        plan = FaultPlan.sample(16, crashes=4, seed=seed, window=MID_RUN,
                                loss=0.15, dup=0.05)
        total, _, _ = run_faulted(proto, 16, plan, seed=seed)
        assert total == TINY_NODES, (proto, seed)


def test_crashed_subtree_chain_is_adopted():
    """Killing a parent-child chain forces recursive adoption."""
    # pids 1 and 3 sit on the static path to 7 at dmax=2; kill both
    plan = FaultPlan(crashes=((1, 8e-4), (3, 9e-4)))
    total, stats, workers = run_faulted("TD", 8, plan, seed=7, dmax=2)
    assert total == TINY_NODES
    assert stats.fault_totals()[4] > 0


# -- partitions and gray failures --------------------------------------------

#: Tight channel pacing: the breaker ladder (t, 2t, 4t, ...) must trip
#: well inside bin_tiny's ~14 ms makespans.
PACING = {"ack_timeout": 5e-4, "breaker_threshold": 3, "quantum": 16}


def partition_plan(n, start=1e-3, end=6e-3):
    """Split ``range(n)`` down the middle for ``[start, end)``."""
    side = tuple(range(n // 2, n))
    return FaultPlan(partitions=((side, start, end),))


@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS"])
def test_conservation_under_partition(proto):
    """A mid-run split-then-heal loses no work: partitions kill links,
    not nodes, so the identity must hold with zero frozen/dropped terms."""
    total, stats, workers = run_faulted(proto, 16, partition_plan(16),
                                        seed=1, **PACING)
    assert total == TINY_NODES
    assert stats.total_work_units == TINY_NODES   # all of it *processed*
    assert stats.fault_totals()[0] > 0            # cross-cut frames dropped
    assert all(not w._crashed for w in workers)


@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS"])
def test_no_false_termination_across_islands(proto):
    """Island safety: no process may learn global termination while the
    cut is up — the waves cannot cross it, and the far island still holds
    (or owes acks for) live work. Every finish_time lands after the heal."""
    end = 6e-3
    total, stats, _ = run_faulted(proto, 16, partition_plan(16, end=end),
                                  seed=1, **PACING)
    assert total == TINY_NODES
    finishes = [p.finish_time for p in stats.per_process]
    assert min(finishes) >= end, \
        f"{proto}: a process terminated at {min(finishes)} inside the cut"


@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS"])
def test_gray_peer_is_circuit_broken(proto):
    """A slow-but-alive peer with flaky links trips breakers and is
    routed around; the run still conserves exactly and the suspicion
    heals (nothing is abandoned — gray is not dead)."""
    n = 16
    pid = n // 2
    plan = FaultPlan(slowdowns=((pid, 0.0, 8e-3, 8.0),),
                     gray_links=((None, pid, 0.0, 8e-3, 4.0, 0.5),
                                 (pid, None, 0.0, 8e-3, 4.0, 0.5)))
    total, stats, workers = run_faulted(proto, n, plan, seed=1, **PACING)
    assert total == TINY_NODES
    assert stats.total_breaker_opens() > 0
    assert all(not w.suspect for w in workers)    # every suspicion healed
    assert workers[pid].terminated                # gray, not dead


@pytest.mark.parametrize("proto", ["TD", "BTD", "RWS"])
def test_conservation_under_partition_and_crashes(proto):
    """A crash on each side of an active cut: the dead-set waves and the
    island gating must compose, and the identity stays exact."""
    plan = FaultPlan(partitions=((tuple(range(8, 16)), 1e-3, 6e-3),),
                     crashes=((5, 2e-3), (11, 3e-3)), loss=0.05)
    total, stats, _ = run_faulted(proto, 16, plan, seed=3, **PACING)
    assert total == TINY_NODES
    assert stats.fault_totals()[3] == 2


# -- B&B under faults --------------------------------------------------------

def test_bnb_exact_under_loss_and_dup():
    """Loss and duplication must not cost B&B optimality."""
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.engine import solve_bruteforce
    from repro.bnb.taillard import scaled_instance
    inst = scaled_instance(3, n_jobs=7, n_machines=5)
    opt, _ = solve_bruteforce(inst)
    for proto in ("TD", "BTD", "RWS"):
        cfg = RunConfig(protocol=proto, n=8, dmax=3, quantum=8, seed=8,
                        faults=FaultPlan(loss=0.15, dup=0.05))
        sim = Simulator(network=grid5000(), seed=8, faults=cfg.faults)
        app = BnBApplication(inst)
        workers = build_workers(sim, cfg, app)
        sim.run()
        assert all(w.terminated for w in workers)
        best = min(w.shared.value for w in workers)
        assert best == opt, proto


def test_bnb_sound_under_crashes():
    """Crash-stop loses subtrees, so the incumbent is an upper bound.

    Work frozen on dead nodes is never re-executed (no checkpointing), so
    the true optimum may hide in a lost subtree — but the incumbent must
    still be a *feasible* schedule, i.e. >= the true optimum, and every
    survivor must terminate.
    """
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.engine import solve_bruteforce
    from repro.bnb.taillard import scaled_instance
    inst = scaled_instance(4, n_jobs=7, n_machines=5)
    opt, _ = solve_bruteforce(inst)
    plan = FaultPlan.sample(12, crashes=3, seed=77, window=(2e-4, 2e-3))
    cfg = RunConfig(protocol="BTD", n=12, dmax=3, quantum=8, seed=9,
                    faults=plan)
    sim = Simulator(network=grid5000(), seed=9, faults=plan)
    app = BnBApplication(inst)
    workers = build_workers(sim, cfg, app)
    sim.run()
    assert all(w.terminated for w in workers if not w._crashed)
    best = min(w.shared.value for w in workers if not w._crashed)
    assert best >= opt


def test_bnb_exact_under_partition():
    """A split-then-heal costs B&B nothing: no node dies, so the search
    is exhaustive and the optimum exact for every protocol."""
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.engine import solve_bruteforce
    from repro.bnb.taillard import scaled_instance
    inst = scaled_instance(3, n_jobs=7, n_machines=5)
    opt, _ = solve_bruteforce(inst)
    for proto in ("TD", "TR", "BTD", "RWS"):
        plan = partition_plan(12, end=4e-3)
        cfg = RunConfig(protocol=proto, n=12, dmax=3, quantum=8, seed=8,
                        faults=plan, ack_timeout=5e-4, breaker_threshold=3)
        sim = Simulator(network=grid5000(), seed=8, faults=plan)
        workers = build_workers(sim, cfg, BnBApplication(inst))
        sim.run()
        assert all(w.terminated for w in workers)
        assert min(w.shared.value for w in workers) == opt, proto


# -- chaos: randomized partition-then-heal schedules -------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def partition_schedules(draw, n=16):
    """1-2 partition windows over range(n): arbitrary proper sides,
    mid-run starts, lengths from a blip to most of the run."""
    windows = []
    for _ in range(draw(st.integers(1, 2))):
        side = draw(st.sets(st.integers(0, n - 1),
                            min_size=1, max_size=n - 1))
        start = draw(st.floats(5e-4, 4e-3))
        dur = draw(st.floats(5e-4, 6e-3))
        windows.append((tuple(sorted(side)), start, start + dur))
    return FaultPlan(partitions=tuple(windows))


@settings(max_examples=8, deadline=None)
@given(proto=st.sampled_from(["TD", "TR", "BTD", "RWS"]),
       plan=partition_schedules(), seed=st.integers(0, 2 ** 20))
def test_chaos_partition_then_heal_uts(proto, plan, seed):
    """Any partition schedule: exact conservation, clean termination."""
    total, stats, _ = run_faulted(proto, 16, plan, seed=seed, **PACING)
    assert total == TINY_NODES
    assert stats.total_work_units == TINY_NODES


@settings(max_examples=6, deadline=None)
@given(proto=st.sampled_from(["TD", "TR", "BTD", "RWS"]),
       plan=partition_schedules(n=12), seed=st.integers(0, 2 ** 20))
def test_chaos_partition_then_heal_bnb(proto, plan, seed):
    """Any partition schedule: B&B stays exhaustive, optimum exact."""
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.engine import solve_bruteforce
    from repro.bnb.taillard import scaled_instance
    inst = scaled_instance(6, n_jobs=6, n_machines=5)
    opt, _ = solve_bruteforce(inst)
    cfg = RunConfig(protocol=proto, n=12, dmax=3, quantum=8, seed=seed,
                    faults=plan, ack_timeout=5e-4, breaker_threshold=3)
    sim = Simulator(network=grid5000(), seed=seed, faults=plan)
    workers = build_workers(sim, cfg, BnBApplication(inst))
    sim.run()
    assert all(w.terminated for w in workers)
    assert min(w.shared.value for w in workers) == opt
