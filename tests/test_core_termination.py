"""Unit tests for the four-counter termination waves."""

from repro.core.termination import WAVE_R, TerminationWaves
from repro.sim import Message, SimProcess, Simulator, uniform_network


class Node(SimProcess):
    """A host with controllable counters for the wave service."""

    def __init__(self, pid, n):
        super().__init__(pid)
        self.sent = 0
        self.recv = 0
        self.active = False
        self.done = False
        self.on_start = None  # optional extra start hook (root only)
        parent = (pid - 1) // 2 if pid > 0 else -1
        children = [c for c in (2 * pid + 1, 2 * pid + 2) if c < n]
        self.waves = TerminationWaves(
            host=self, parent=parent, children=children,
            get_counters=lambda: (self.sent, self.recv, self.active),
            on_terminate=self._finish, retry_delay=1e-3)

    def start(self):
        if self.on_start is not None:
            self.on_start()

    def _finish(self):
        self.done = True
        self.stats.finish_time = self.now

    def on_message(self, msg: Message):
        self.waves.handle(msg)

    def finished(self):
        return self.done


def build(n, seed=1):
    sim = Simulator(uniform_network(latency=1e-4), seed=seed)
    nodes = [sim.add_process(Node(p, n)) for p in range(n)]
    return sim, nodes


def test_quiescent_system_terminates():
    sim, nodes = build(7)
    nodes[0].on_start = nodes[0].waves.root_try
    sim.run()
    assert all(nd.done for nd in nodes)
    # exactly two clean identical waves suffice
    assert nodes[0].waves.waves_run == 2


def test_single_node_terminates():
    sim, nodes = build(1)
    nodes[0].on_start = nodes[0].waves.root_try
    sim.run()
    assert nodes[0].done


def test_active_node_blocks_termination():
    sim, nodes = build(7)
    root = nodes[0]
    nodes[5].active = True

    def deactivate():
        nodes[5].active = False
        root.call_after(1e-3, root.waves.root_try)

    def boot():
        root.waves.root_try()
        root.call_after(0.02, deactivate)

    root.on_start = boot
    stats = sim.run()
    assert all(nd.done for nd in nodes)
    assert stats.makespan > 0.02  # not before the deactivation
    assert root.waves.waves_run > 2  # some waves failed first


def test_unbalanced_counters_block_termination():
    """S != R looks like an in-flight work message: must not terminate."""
    sim, nodes = build(3)
    root = nodes[0]
    nodes[2].sent = 5
    nodes[1].recv = 4  # one transfer still in flight

    def settle():
        nodes[1].recv = 5
        root.call_after(1e-3, root.waves.root_try)

    def boot():
        root.waves.root_try()
        root.call_after(0.05, settle)

    root.on_start = boot
    stats = sim.run()
    assert all(nd.done for nd in nodes)
    assert stats.makespan > 0.05


def test_equal_but_changing_counters_need_more_waves():
    """Mattern's rule: one clean wave is not sufficient on its own."""
    sim, nodes = build(3)
    root = nodes[0]

    def bump():
        # a transfer completes between waves: both counters move together
        nodes[1].sent += 1
        nodes[2].recv += 1

    def boot():
        root.waves.root_try()
        root.call_after(0.8e-3, bump)  # lands between waves 1 and 2

    root.on_start = boot
    sim.run()
    assert all(nd.done for nd in nodes)
    # waves 1 and 2 were clean but not identical -> needed more
    assert root.waves.waves_run >= 3


def test_declare_bypasses_waves():
    sim, nodes = build(7)
    nodes[0].on_start = nodes[0].waves.declare
    sim.run()
    assert all(nd.done for nd in nodes)
    assert nodes[0].waves.waves_run == 0


def test_should_wave_gate():
    gate = {"open": False}
    sim, nodes = build(3)
    root = nodes[0]
    root.waves.should_wave = lambda: gate["open"]

    def open_gate():
        gate["open"] = True
        root.waves.root_try()

    def boot():
        root.waves.root_try()  # gated: no-op
        root.call_after(0.01, open_gate)

    root.on_start = boot
    stats = sim.run()
    assert all(nd.done for nd in nodes)
    assert stats.makespan > 0.01


def test_stale_wave_replies_ignored():
    sim, nodes = build(3)
    root = nodes[0]

    def boot():
        # a bogus reply for a wave that never ran must be discarded
        nodes[1].send(0, WAVE_R, (99, 0, 0, False))
        root.call_after(0.01, root.waves.root_try)

    # node 1 cannot send before the sim starts; do it from the root's start
    def boot_root():
        root.send(0, WAVE_R, (99, 7, 3, True))
        root.call_after(0.01, root.waves.root_try)

    root.on_start = boot_root
    sim.run()
    assert all(nd.done for nd in nodes)


def test_backoff_grows_on_failed_waves():
    sim, nodes = build(3)
    nodes[1].active = True  # forever: never terminates
    nodes[0].on_start = nodes[0].waves.root_try
    sim.run(max_time=0.5)
    w = nodes[0].waves
    assert w._backoff > 1.0
    assert not w.terminated
    assert w.waves_run > 2


def test_message_kinds_routed():
    _, nodes = build(3)
    w = nodes[0].waves
    assert w.handles("WAVE") and w.handles("WAVE_R") and w.handles("TERM")
    assert not w.handles("WORK")
