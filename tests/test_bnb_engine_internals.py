"""Deeper engine tests: resume boundaries, pause points, partial blocks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bnb.engine import BnBEngine, solve_bruteforce
from repro.bnb.interval import prefix_block, tree_leaves
from repro.bnb.state import BoundState
from repro.bnb.taillard import scaled_instance
from repro.bnb.work import BnBWork

INST = scaled_instance(7, n_jobs=7, n_machines=5)
OPT, _ = solve_bruteforce(INST)
N = INST.n_jobs


def explore_all(engine, work, shared, quantum):
    nodes = 0
    while not work.is_empty():
        nodes += engine.explore(work, shared, quantum).nodes
    return nodes


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=400))
def test_property_node_count_independent_of_quantum(quantum):
    engine = BnBEngine(INST)
    ref_nodes = explore_all(BnBEngine(INST), BnBWork.full_tree(N),
                            BoundState(), 10**9)
    nodes = explore_all(engine, BnBWork.full_tree(N), BoundState(), quantum)
    assert nodes == ref_nodes


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=tree_leaves(7) - 1),
                min_size=1, max_size=5, unique=True))
def test_property_any_partition_finds_optimum(cuts):
    """Cutting [0, n!) at arbitrary positions never loses the optimum."""
    bounds = sorted({0, tree_leaves(N), *cuts})
    best = None
    engine = BnBEngine(INST)
    for a, b in zip(bounds, bounds[1:]):
        shared = BoundState()
        work = BnBWork(N, [(a, b)])
        explore_all(engine, work, shared, 500)
        if shared.perm is not None and (best is None or shared.value < best):
            best = shared.value
    assert best == OPT


def test_partial_block_overshoot_is_safe():
    """An interval ending mid-block explores only what it must."""
    # block of the second depth-1 child, cut in half
    start, end = prefix_block([1], N)
    mid = (start + end) // 2
    engine = BnBEngine(INST)
    s1, s2 = BoundState(), BoundState()
    explore_all(engine, BnBWork(N, [(start, mid)]), s1, 100)
    explore_all(engine, BnBWork(N, [(mid, end)]), s2, 100)
    # together they cover the block: same best as exploring it whole
    s_all = BoundState()
    explore_all(engine, BnBWork(N, [(start, end)]), s_all, 100)
    assert min(s1.value, s2.value) == s_all.value


def test_empty_interval_rejected():
    with pytest.raises(Exception):
        BnBWork(N, [(5, 5)])


def test_explore_zero_budget():
    engine = BnBEngine(INST)
    work = BnBWork.full_tree(N)
    res = engine.explore(work, BoundState(), 0)
    assert res.nodes == 0
    assert not res.exhausted


def test_single_leaf_interval():
    engine = BnBEngine(INST)
    for pos in (0, 1, tree_leaves(N) - 1):
        shared = BoundState()
        work = BnBWork(N, [(pos, pos + 1)])
        explore_all(engine, work, shared, 100)
        from repro.bnb.interval import position_to_permutation
        perm = position_to_permutation(pos, N)
        assert shared.value <= INST.makespan(perm)


def test_multi_interval_work_explored_in_order():
    engine = BnBEngine(INST)
    shared = BoundState()
    work = BnBWork(N, [(0, 10), (100, 120), (5000, 5040)])
    total = explore_all(engine, work, shared, 7)
    assert total > 0
    assert work.is_empty()


def test_rebuild_handles_all_digit_patterns():
    """Positions with zero/nonzero digit tails all resume correctly."""
    engine = BnBEngine(INST)
    leaves = tree_leaves(N)
    # positions engineered to hit: all-zero digits, deep nonzero, shallow
    positions = [0, 1, 720, 721, 2521, leaves // 2, leaves - 2]
    for a in positions:
        shared = BoundState()
        work = BnBWork(N, [(a, min(a + 100, leaves))])
        explore_all(engine, work, shared, 13)
        assert work.is_empty()


def test_ub_carried_across_intervals():
    """The UB found in an early interval prunes later ones."""
    engine = BnBEngine(INST)
    shared_together = BoundState()
    w = BnBWork(N, [(0, 2000), (3000, 5000)])
    n_together = explore_all(engine, w, shared_together, 10**9)
    # same intervals, fresh states: no UB carry-over
    n_separate = 0
    for iv in [(0, 2000), (3000, 5000)]:
        n_separate += explore_all(engine, BnBWork(N, [iv]), BoundState(),
                                  10**9)
    assert n_together <= n_separate
