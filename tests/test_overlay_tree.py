"""Tests for tree overlays: construction, invariants, properties."""

import pytest
from hypothesis import given, strategies as st

from repro.overlay.tree import (TreeOverlay, chain_tree, deterministic_tree,
                                from_parents, random_tree, star_tree)
from repro.sim.errors import SimConfigError


def test_td_parentage():
    t = deterministic_tree(12, dmax=3)
    assert t.parent[0] == -1
    assert t.children[0] == (1, 2, 3)
    assert t.children[1] == (4, 5, 6)
    assert t.parent[11] == 3  # wait recomputed below
    # node v's parent is (v-1)//dmax
    for v in range(1, 12):
        assert t.parent[v] == (v - 1) // 3


def test_td_degree_bound():
    for n in (1, 2, 17, 100):
        for dmax in (1, 2, 5, 10):
            t = deterministic_tree(n, dmax)
            assert all(len(t.children[v]) <= dmax for v in range(n))
            t.validate()


def test_td_is_bfs_labelled():
    t = deterministic_tree(50, dmax=4)
    assert list(t.bfs_order()) == list(range(50))


def test_subtree_sizes_sum():
    t = deterministic_tree(31, dmax=2)
    assert t.subtree_size[0] == 31
    # perfect binary tree of 31 nodes: sizes 31,15,15,7,7,7,7,...
    assert t.subtree_size[1] == t.subtree_size[2] == 15
    assert t.subtree_size[3] == 7


def test_depth_and_height():
    t = chain_tree(5)
    assert t.height == 4
    assert t.depth == (0, 1, 2, 3, 4)
    s = star_tree(5)
    assert s.height == 1


def test_random_tree_valid_and_seeded():
    a = random_tree(200, seed=4)
    b = random_tree(200, seed=4)
    c = random_tree(200, seed=5)
    a.validate()
    assert a.parent == b.parent
    assert a.parent != c.parent


def test_leaves_and_is_leaf():
    t = deterministic_tree(7, dmax=2)
    assert t.leaves() == [3, 4, 5, 6]
    assert t.is_leaf(6) and not t.is_leaf(0)


def test_neighbors():
    t = deterministic_tree(7, dmax=2)
    assert set(t.neighbors(0)) == {1, 2}
    assert set(t.neighbors(1)) == {3, 4, 0}


def test_degree_counts_parent_link():
    t = deterministic_tree(7, dmax=2)
    assert t.degree(0) == 2
    assert t.degree(1) == 3
    assert t.degree(6) == 1


def test_distance():
    t = deterministic_tree(15, dmax=2)
    assert t.distance(0, 0) == 0
    assert t.distance(3, 1) == 1
    assert t.distance(3, 4) == 2
    assert t.distance(7, 14) == 6  # leaf to leaf through the root


def test_path_to_root():
    t = deterministic_tree(15, dmax=2)
    assert t.path_to_root(11) == [11, 5, 2, 0]


def test_invalid_constructions():
    with pytest.raises(SimConfigError):
        deterministic_tree(0, 2)
    with pytest.raises(SimConfigError):
        deterministic_tree(5, 0)
    with pytest.raises(SimConfigError):
        random_tree(0)
    with pytest.raises(SimConfigError):
        from_parents([0])  # root must be -1
    with pytest.raises(SimConfigError):
        from_parents([-1, 5])  # forward parent
    with pytest.raises(SimConfigError):
        TreeOverlay(parent=())


def test_single_node():
    t = deterministic_tree(1, 5)
    assert t.n == 1 and t.leaves() == [0] and t.height == 0
    assert t.neighbors(0) == []


@st.composite
def parent_vectors(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    parents = [-1] + [draw(st.integers(min_value=0, max_value=v - 1))
                      for v in range(1, n)]
    return parents


@given(parent_vectors())
def test_property_overlay_invariants(parents):
    t = from_parents(parents)
    t.validate()
    # subtree sizes: each node's size = 1 + sum of children sizes
    for v in range(t.n):
        assert t.subtree_size[v] == 1 + sum(t.subtree_size[c]
                                            for c in t.children[v])
    # BFS order visits every node once
    assert sorted(t.bfs_order()) == list(range(t.n))
    # depths consistent with parents
    for v in range(1, t.n):
        assert t.depth[v] == t.depth[t.parent[v]] + 1


@given(parent_vectors(), st.data())
def test_property_distance_symmetric_triangle(parents, data):
    t = from_parents(parents)
    u = data.draw(st.integers(min_value=0, max_value=t.n - 1))
    v = data.draw(st.integers(min_value=0, max_value=t.n - 1))
    assert t.distance(u, v) == t.distance(v, u)
    assert t.distance(u, v) <= t.depth[u] + t.depth[v]
    if u == v:
        assert t.distance(u, v) == 0
