"""End-to-end UTS correctness: every protocol counts the exact tree size.

This is the master invariant of the whole system: work conservation across
splits, merges, transfers, queueing and termination detection means the sum
of processed units over all workers equals the sequential count.
"""

import pytest

from repro.apps import UTSApplication
from repro.experiments.runner import RunConfig, run_once
from repro.uts import get_preset

PRESET = get_preset("bin_tiny")  # 22,241 nodes


def run(proto, n, **kw):
    cfg = RunConfig(protocol=proto, n=n, seed=kw.pop("seed", 5), **kw)
    return run_once(cfg, UTSApplication(PRESET.params))


@pytest.mark.parametrize("proto", ["TD", "TR", "BTD", "RWS"])
@pytest.mark.parametrize("n", [1, 2, 7, 32])
def test_exact_count_all_protocols_and_sizes(proto, n):
    if n == 1 and proto == "TR":
        pytest.skip("TR(1) == TD(1)")
    r = run(proto, n, dmax=3)
    assert r.total_units == PRESET.nodes


@pytest.mark.parametrize("dmax", [1, 2, 5, 31])
def test_td_any_degree(dmax):
    r = run("TD", 32, dmax=dmax)
    assert r.total_units == PRESET.nodes


@pytest.mark.parametrize("quantum", [1, 8, 512])
def test_any_quantum(quantum):
    r = run("BTD", 16, quantum=quantum, dmax=4)
    assert r.total_units == PRESET.nodes


@pytest.mark.parametrize("sharing", ["proportional", "half", "steal-2"])
def test_any_sharing_policy(sharing):
    r = run("TD", 16, sharing=sharing, dmax=4)
    assert r.total_units == PRESET.nodes


@pytest.mark.parametrize("proto", ["TD", "BTD", "RWS"])
def test_with_network_jitter(proto):
    """Random message reordering must not lose or duplicate work."""
    for seed in (1, 2, 3):
        r = run(proto, 24, dmax=4, jitter=3.0, seed=seed)
        assert r.total_units == PRESET.nodes


def test_determinism():
    a = run("BTD", 16, dmax=4, seed=9)
    b = run("BTD", 16, dmax=4, seed=9)
    assert a.makespan == b.makespan
    assert a.total_msgs == b.total_msgs
    assert a.msgs_by_pid == b.msgs_by_pid


def test_seeds_change_outcomes():
    a = run("BTD", 16, dmax=4, seed=1)
    b = run("BTD", 16, dmax=4, seed=2)
    assert (a.makespan, a.total_msgs) != (b.makespan, b.total_msgs)


def test_everyone_terminates_and_learns_it():
    from repro.apps.uts_app import UTSApplication as A
    from repro.sim import Simulator, grid5000
    from repro.experiments.runner import build_workers
    cfg = RunConfig(protocol="BTD", n=20, dmax=4, seed=3)
    sim = Simulator(grid5000(), seed=3)
    workers = build_workers(sim, cfg, A(PRESET.params))
    stats = sim.run()
    assert all(w.terminated for w in workers)
    assert all(p.finish_time > 0 for p in stats.per_process)
    # makespan is the time the last worker learnt about termination
    assert stats.makespan == max(p.finish_time for p in stats.per_process)
    assert stats.makespan >= stats.work_done_time


def test_convergecast_vs_instant_sizes_same_counts():
    from repro.core.config import OCLBConfig
    r1 = run("TD", 16, dmax=4, oclb=OCLBConfig(convergecast=True))
    r2 = run("TD", 16, dmax=4, oclb=OCLBConfig(convergecast=False))
    assert r1.total_units == r2.total_units == PRESET.nodes
    # both modes finish; the distributed bootstrap costs extra messages
    # (2*(n-1) SIZE messages) but timing shifts can change totals either
    # way, so only sanity-check both completed with plausible traffic
    assert r1.total_msgs > 0 and r2.total_msgs > 0


def test_more_workers_not_slower_much():
    """Scaling up should reduce (or at least not explode) the makespan."""
    t4 = run("BTD", 4, dmax=4).makespan
    t32 = run("BTD", 32, dmax=4).makespan
    assert t32 < t4


def test_parallel_efficiency_reasonable():
    r = run("BTD", 8, dmax=4)
    app = UTSApplication(PRESET.params)
    t_seq = PRESET.nodes * app.unit_cost
    eff = r.efficiency(t_seq)
    assert 0.5 < eff <= 1.01


def test_geo_variant_end_to_end():
    from repro.uts import UTSParams, count_tree
    params = UTSParams(variant="geo", b0=3, alpha=0.7, depth_max=9,
                       root_seed=4)
    expected = count_tree(params).nodes
    r = run_once(RunConfig(protocol="BTD", n=8, dmax=3, seed=1),
                 UTSApplication(params))
    assert r.total_units == expected
