"""The example scripts are part of the public API surface: they must run."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "nodes counted" in out
    assert "speedup" in out


def test_overlay_explorer():
    out = run_example("overlay_explorer.py")
    assert "overlay structure" in out
    assert "BTD dmax=10" in out


def test_flowshop_bnb():
    out = run_example("flowshop_bnb.py")
    assert "NEH heuristic" in out
    assert "AHMW" in out


def test_custom_application():
    out = run_example("custom_application.py")
    assert "identical to sequential" in out


def test_utilization_timeline():
    out = run_example("utilization_timeline.py")
    assert "BTD" in out and "RWS" in out
    assert "busy" in out


def test_tsp_bnb():
    out = run_example("tsp_bnb.py")
    assert "exact optimum confirmed" in out
