"""Tests for Johnson's rule and lower-bound admissibility."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.bnb.bounds import (JohnsonPairBound, MaxBound, OneMachineBound,
                              TrivialBound, get_bound)
from repro.bnb.flowshop import make_instance
from repro.bnb.johnson import (johnson_order, two_machine_makespan,
                               two_machine_optimal)
from repro.sim.errors import SimConfigError


def test_johnson_textbook_example():
    # Classic: jobs (a, b) = (3,2) (5,4) (1,6): Johnson order: 2,1,0
    a, b = [3, 5, 1], [2, 4, 6]
    assert johnson_order(a, b) == [2, 1, 0]
    assert two_machine_optimal(a, b) == 13


def test_johnson_is_optimal_exhaustively():
    rng_cases = [([4, 2, 7, 1], [3, 8, 2, 5]),
                 ([1, 1, 1], [1, 1, 1]),
                 ([9, 1], [1, 9])]
    for a, b in rng_cases:
        best = min(two_machine_makespan(a, b, order)
                   for order in itertools.permutations(range(len(a))))
        assert two_machine_optimal(a, b) == best


@settings(max_examples=50)
@given(st.integers(min_value=2, max_value=5), st.data())
def test_property_johnson_optimal(n, data):
    a = [data.draw(st.integers(min_value=1, max_value=20)) for _ in range(n)]
    b = [data.draw(st.integers(min_value=1, max_value=20)) for _ in range(n)]
    best = min(two_machine_makespan(a, b, order)
               for order in itertools.permutations(range(n)))
    assert two_machine_optimal(a, b) == best


def test_johnson_start_times():
    a, b = [3, 5, 1], [2, 4, 6]
    assert two_machine_optimal(a, b, start_a=10, start_b=0) == 23


def test_johnson_length_mismatch():
    with pytest.raises(ValueError):
        johnson_order([1], [1, 2])


# --- bound admissibility ------------------------------------------------------

INST = make_instance([[5, 2, 7, 3], [4, 6, 1, 8], [9, 3, 5, 2]], name="t")


def best_completion_below(inst, prefix):
    """True optimal makespan among completions of ``prefix``."""
    rest = [j for j in range(inst.n_jobs) if j not in prefix]
    return min(inst.makespan(list(prefix) + list(tail))
               for tail in itertools.permutations(rest))


def eval_child_bound(bound, inst, prefix):
    """Drive a bound exactly like the engine does, for the last prefix job.

    Mirrors the engine's mask discipline: the published unscheduled mask
    always equals the set the current call refers to (the frame's remaining
    at ``frame()`` time, the child's remaining at ``child()`` time).
    """
    *head, j = prefix
    remaining_parent = [x for x in range(inst.n_jobs) if x not in head]
    front = [0] * inst.n_machines
    for job in head:
        front = inst.advance(front, job)
    if hasattr(bound, "set_mask"):
        bound.set_mask([x in remaining_parent for x in range(inst.n_jobs)])
    fd = bound.frame(remaining_parent)
    nf = inst.advance(front, j)
    remaining_child = [x for x in remaining_parent if x != j]
    rem_sum = [sum(inst.p[i][x] for x in remaining_child)
               for i in range(inst.n_machines)]
    if hasattr(bound, "set_mask"):
        bound.set_mask([x in remaining_child for x in range(inst.n_jobs)])
    return bound.child(nf, j, fd, rem_sum)


@pytest.mark.parametrize("bound_name", ["trivial", "lb1", "johnson",
                                        "johnson:last", "johnson:all", "llrk"])
def test_bounds_admissible_everywhere(bound_name):
    bound = get_bound(bound_name).attach(INST)
    n = INST.n_jobs
    for depth in (1, 2, 3):
        for prefix in itertools.permutations(range(n), depth):
            lb = eval_child_bound(bound, INST, prefix)
            true = best_completion_below(INST, prefix)
            assert lb <= true, (bound_name, prefix, lb, true)


def test_stronger_bounds_dominate_trivial():
    triv = get_bound("trivial").attach(INST)
    lb1 = get_bound("lb1").attach(INST)
    for prefix in itertools.permutations(range(4), 2):
        assert (eval_child_bound(lb1, INST, prefix)
                >= eval_child_bound(triv, INST, prefix))


def test_bound_factory():
    assert isinstance(get_bound("lb1"), OneMachineBound)
    assert isinstance(get_bound("trivial"), TrivialBound)
    assert isinstance(get_bound("johnson:last"), JohnsonPairBound)
    assert isinstance(get_bound("llrk"), MaxBound)
    with pytest.raises(SimConfigError):
        get_bound("nope")


def test_johnson_pairs_specs():
    jb = JohnsonPairBound("all").attach(INST)
    m = INST.n_machines
    assert len(jb.pairs) == m * (m - 1) // 2
    jb2 = JohnsonPairBound([(0, 2)]).attach(INST)
    assert jb2.pairs == [(0, 2)]
    with pytest.raises(SimConfigError):
        JohnsonPairBound([(2, 1)]).attach(INST)
    with pytest.raises(SimConfigError):
        JohnsonPairBound("bogus").attach(INST)
    with pytest.raises(SimConfigError):
        MaxBound([])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=1, max_value=30),
                         min_size=5, max_size=5),
                min_size=2, max_size=3),
       st.data())
def test_property_lb1_admissible(rows, data):
    inst = make_instance(rows)
    bound = OneMachineBound().attach(inst)
    depth = data.draw(st.integers(min_value=1, max_value=3))
    prefix = tuple(data.draw(st.permutations(list(range(5))))[:depth])
    lb = eval_child_bound(bound, inst, prefix)
    assert lb <= best_completion_below(inst, prefix)
