"""Tests for bridge-edge selection (BTD)."""

import pytest

from repro.overlay.bridges import BridgedTreeOverlay, add_bridges
from repro.overlay.tree import deterministic_tree, star_tree
from repro.sim.errors import SimConfigError


def test_every_node_gets_a_bridge():
    t = deterministic_tree(100, dmax=10)
    b = add_bridges(t, seed=1)
    assert len(b.bridge) == 100
    assert all(b.bridge_of(v) is not None for v in range(100))


def test_no_self_bridges():
    t = deterministic_tree(64, dmax=2)
    b = add_bridges(t, seed=3)
    assert all(b.bridge[v] != v for v in range(64))


def test_far_policy_distance():
    t = deterministic_tree(127, dmax=2)  # height 6
    b = add_bridges(t, seed=2, policy="far")
    threshold = max(2, t.height // 2 + 1)
    far_enough = sum(1 for v in range(t.n)
                     if t.distance(v, b.bridge[v]) > threshold)
    # the root region may fall back to uniform; the vast majority must be far
    assert far_enough >= t.n * 0.8


def test_uniform_policy_avoids_tree_neighbors():
    t = deterministic_tree(50, dmax=5)
    b = add_bridges(t, seed=9, policy="uniform")
    for v in range(50):
        u = b.bridge[v]
        assert u != t.parent[v]
        assert t.parent[u] != v


def test_seeded_determinism():
    t = deterministic_tree(80, dmax=4)
    assert add_bridges(t, seed=5).bridge == add_bridges(t, seed=5).bridge
    assert add_bridges(t, seed=5).bridge != add_bridges(t, seed=6).bridge


def test_unknown_policy():
    with pytest.raises(SimConfigError):
        add_bridges(deterministic_tree(10, 2), policy="nope")


def test_tiny_overlays():
    t2 = deterministic_tree(2, 2)
    b = add_bridges(t2, seed=0)
    # only possible non-self target is the tree neighbour; fallback allows it
    assert b.bridge == (1, 0)
    t1 = deterministic_tree(1, 2)
    b1 = add_bridges(t1, seed=0)
    assert b1.bridge_of(0) is None


def test_star_fallback():
    # On a star, "far" admits no pair; fallback must still give bridges.
    s = star_tree(20)
    b = add_bridges(s, seed=1)
    assert all(b.bridge[v] != v for v in range(20))


def test_kind_and_validation():
    t = deterministic_tree(10, 2)
    b = add_bridges(t, seed=0)
    assert b.kind == "BTD"
    assert b.n == 10
    with pytest.raises(SimConfigError):
        BridgedTreeOverlay(tree=t, bridge=(0,) * 9)
    with pytest.raises(SimConfigError):
        BridgedTreeOverlay(tree=t, bridge=tuple([0] + [0] * 9))  # 0 -> 0
