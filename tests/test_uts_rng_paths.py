"""The scalar (small-batch) and vectorised UTS RNG paths must agree bitwise.

If they diverged, the tree's shape would depend on how work was batched
across workers — a catastrophic, silent correctness bug. Pinned here.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.uts.rng import SMALL_BATCH, child_states, decide_unit


def test_decide_unit_paths_identical():
    s = np.arange(1000, dtype=np.uint64) * np.uint64(2654435761)
    chunked = np.concatenate([decide_unit(s[i:i + 7])
                              for i in range(0, 994, 7)])
    assert np.array_equal(chunked, decide_unit(s)[:len(chunked)])


def test_child_states_paths_identical():
    s = np.arange(300, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    counts = np.tile(np.array([0, 1, 2], dtype=np.int64), 100)
    small = np.concatenate([child_states(s[i:i + 3], counts[i:i + 3])
                            for i in range(0, 300, 3)])
    assert np.array_equal(small, child_states(s, counts))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**64 - 1),
                          st.integers(min_value=0, max_value=4)),
                min_size=1, max_size=3 * SMALL_BATCH))
def test_property_batching_invariance(entries):
    states = np.array([s for s, _ in entries], dtype=np.uint64)
    counts = np.array([c for _, c in entries], dtype=np.int64)
    whole = child_states(states, counts)
    # one-at-a-time (always the scalar path)
    single = [child_states(states[i:i + 1], counts[i:i + 1])
              for i in range(len(entries))]
    merged = (np.concatenate(single) if single
              else np.empty(0, dtype=np.uint64))
    assert np.array_equal(whole, merged)
    u_whole = decide_unit(states)
    u_single = np.concatenate([decide_unit(states[i:i + 1])
                               for i in range(len(entries))])
    assert np.array_equal(u_whole, u_single)
