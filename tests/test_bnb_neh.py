"""Tests for the NEH heuristic."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bnb.engine import solve_bruteforce
from repro.bnb.flowshop import make_instance
from repro.bnb.neh import neh, neh_order
from repro.bnb.taillard import scaled_instance


def test_neh_order_by_total_time():
    inst = make_instance([[5, 1, 3], [5, 1, 3]])
    assert neh_order(inst) == [0, 2, 1]


def test_neh_returns_valid_permutation():
    inst = scaled_instance(1, n_jobs=10, n_machines=10)
    value, perm = neh(inst)
    assert sorted(perm) == list(range(10))
    assert inst.makespan(perm) == value


def test_neh_at_least_optimum():
    for k in (1, 4, 8):
        inst = scaled_instance(k, n_jobs=7, n_machines=5)
        opt, _ = solve_bruteforce(inst)
        value, _ = neh(inst)
        assert value >= opt


def test_neh_close_to_optimum_on_small_instances():
    """NEH is famously within a few percent on flow shops."""
    gaps = []
    for k in range(1, 11):
        inst = scaled_instance(k, n_jobs=8, n_machines=6)
        opt, _ = solve_bruteforce(inst)
        value, _ = neh(inst)
        gaps.append(value / opt - 1.0)
    assert sum(gaps) / len(gaps) < 0.05


def test_neh_beats_identity_order_usually():
    wins = 0
    for k in range(1, 11):
        inst = scaled_instance(k, n_jobs=10, n_machines=10)
        value, _ = neh(inst)
        if value <= inst.makespan(list(range(10))):
            wins += 1
    assert wins >= 8


def test_neh_single_job():
    inst = make_instance([[7], [3]])
    value, perm = neh(inst)
    assert perm == [0]
    assert value == 10


@settings(max_examples=25, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=1, max_value=40),
                         min_size=5, max_size=5),
                min_size=2, max_size=3))
def test_property_neh_valid_and_admissible(rows):
    inst = make_instance(rows)
    value, perm = neh(inst)
    assert sorted(perm) == list(range(5))
    assert inst.makespan(perm) == value
    best = min(inst.makespan(p)
               for p in itertools.permutations(range(5)))
    assert value >= best
