"""Failure injection: random delays, adversarial shapes, extreme knobs.

Hypothesis drives random protocol/overlay/knob combinations through whole
simulations; the oracle is always the same — exact work conservation and
clean termination. This is the harness that historically catches
termination-detection races.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.synthetic import SyntheticApplication
from repro.apps.uts_app import UTSApplication
from repro.experiments.runner import RunConfig, run_once
from repro.uts.params import PRESETS
from repro.uts.sequential import count_tree
from repro.uts.tree import UTSParams

MINI = PRESETS["bin_mini"].params
MINI_NODES = count_tree(MINI).nodes


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    proto=st.sampled_from(["TD", "TR", "BTD", "RWS"]),
    n=st.integers(min_value=1, max_value=24),
    dmax=st.integers(min_value=1, max_value=12),
    quantum=st.sampled_from([1, 3, 17, 256]),
    jitter=st.sampled_from([0.0, 1.0, 5.0]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_conservation_under_chaos(proto, n, dmax, quantum, jitter,
                                           seed):
    cfg = RunConfig(protocol=proto, n=n, dmax=dmax, quantum=quantum,
                    jitter=jitter, seed=seed)
    result = run_once(cfg, UTSApplication(MINI))
    assert result.total_units == MINI_NODES


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=1000),
       jitter=st.floats(min_value=0.0, max_value=10.0))
def test_property_bnb_protocols_agree_under_chaos(seed, jitter):
    from repro.apps.bnb_app import BnBApplication
    from repro.bnb.engine import solve_bruteforce
    from repro.bnb.taillard import scaled_instance
    inst = scaled_instance(1 + seed % 10, n_jobs=6, n_machines=5)
    opt, _ = solve_bruteforce(inst)
    for proto in ("BTD", "MW"):
        cfg = RunConfig(protocol=proto, n=9, dmax=3, quantum=8,
                        jitter=jitter, seed=seed)
        result = run_once(cfg, BnBApplication(inst))
        assert result.optimum == opt, (proto, seed, jitter)


def test_degenerate_overlays():
    """dmax=1 (a chain) and dmax=n (a star) both work."""
    for dmax in (1, 23):
        r = run_once(RunConfig(protocol="TD", n=24, dmax=dmax, seed=1),
                     UTSApplication(MINI))
        assert r.total_units == MINI_NODES


def test_tiny_quantum_everywhere():
    for proto in ("TD", "BTD", "RWS"):
        r = run_once(RunConfig(protocol=proto, n=6, dmax=2, quantum=1,
                               seed=2),
                     UTSApplication(MINI))
        assert r.total_units == MINI_NODES


def test_degenerate_tree_sizes():
    empty_ish = UTSParams(b0=1, q=0.01, m=2, root_seed=1)
    expected = count_tree(empty_ish).nodes
    for proto in ("TD", "BTD", "RWS"):
        r = run_once(RunConfig(protocol=proto, n=8, dmax=3, seed=3),
                     UTSApplication(empty_ish))
        assert r.total_units == expected


def test_far_more_workers_than_work():
    """127 workers, ~hundreds of nodes: most never get work, all stop."""
    r = run_once(RunConfig(protocol="BTD", n=127, dmax=3, seed=4),
                 UTSApplication(MINI))
    assert r.total_units == MINI_NODES


def test_synthetic_app_through_all_protocols():
    for proto in ("TD", "TR", "BTD", "RWS"):
        cfg = RunConfig(protocol=proto, n=11, dmax=3, quantum=32, seed=5)
        r = run_once(cfg, SyntheticApplication(3000, unit_cost=1e-5))
        assert r.total_units == 3000


def test_extreme_handler_cost():
    r = run_once(RunConfig(protocol="BTD", n=12, dmax=3, seed=6,
                           handler_cost=1e-3),
                 UTSApplication(MINI))
    assert r.total_units == MINI_NODES


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    proto=st.sampled_from(["TD", "TR", "BTD", "RWS"]),
    n=st.integers(min_value=2, max_value=16),
    loss=st.sampled_from([0.0, 0.05, 0.15]),
    dup=st.sampled_from([0.0, 0.1]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_conservation_under_lossy_links(proto, n, loss, dup, seed):
    """Loss/duplication chaos: the reliable channel keeps conservation exact."""
    from repro.sim.faults import FaultPlan
    plan = FaultPlan(loss=loss, dup=dup)
    cfg = RunConfig(protocol=proto, n=n, dmax=4, quantum=32, seed=seed,
                    faults=plan)
    result = run_once(cfg, UTSApplication(MINI))
    assert result.total_units == MINI_NODES


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    proto=st.sampled_from(["TD", "TR", "BTD", "RWS"]),
    n=st.integers(min_value=4, max_value=16),
    crashes=st.integers(min_value=1, max_value=4),
    loss=st.sampled_from([0.0, 0.1]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_conservation_under_crash_chaos(proto, n, crashes, loss,
                                                 seed):
    """Crash chaos: the four-place accounting identity holds exactly.

    Uses the oracle of test_fault_tolerance — live units plus drained
    frozen/in-flight/dropped work must reproduce the sequential count.
    """
    from tests.test_fault_tolerance import run_faulted
    from repro.sim.faults import FaultPlan
    crashes = min(crashes, n - 1, max(1, n // 4))
    plan = FaultPlan.sample(n, crashes=crashes, seed=seed,
                            window=(2e-4, 2e-3), loss=loss)
    total, _, _ = run_faulted(proto, n, plan, seed=seed,
                              app=UTSApplication(MINI))
    assert total == MINI_NODES


def test_uniform_bridge_policy_still_correct():
    from repro.core.oclb import OverlayWorker
    from repro.core.worker import WorkerConfig
    from repro.overlay.bridges import add_bridges
    from repro.overlay.tree import deterministic_tree
    from repro.sim import Simulator, grid5000
    overlay = add_bridges(deterministic_tree(16, 4), seed=7,
                          policy="uniform")
    sim = Simulator(grid5000(), seed=7)
    app = UTSApplication(MINI)
    ws = [sim.add_process(OverlayWorker(p, app, WorkerConfig(seed=7),
                                        overlay)) for p in range(16)]
    stats = sim.run()
    assert stats.total_work_units == MINI_NODES
    assert all(w.terminated for w in ws)
