"""Tests for UTS tree rules and the sequential counter."""

import numpy as np
import pytest

from repro.sim.errors import SimConfigError
from repro.uts.params import PAPER_INSTANCES, PRESETS, get_preset
from repro.uts.rng import decide_unit
from repro.uts.sequential import count_tree
from repro.uts.tree import UTSParams, child_counts, expand, root_frontier


def brute_force_count(params: UTSParams) -> int:
    """Scalar-recursion oracle (small trees only)."""
    from repro.uts.rng import nth_child, root_state
    root = root_state(params.root_seed)
    total = 1
    stack = [(nth_child(root, i), 1) for i in range(params.b0)]
    while stack:
        s, d = stack.pop()
        total += 1
        u = float(decide_unit(np.array([s], dtype=np.uint64))[0])
        if params.variant == "bin":
            c = params.m if u < params.q else 0
        else:
            exp = params.b0 * params.alpha ** d
            c = int(exp) + (1 if u < exp - int(exp) else 0)
            if d >= params.depth_max:
                c = 0
        for i in range(c):
            stack.append((nth_child(s, i), d + 1))
    return total


def test_params_validation():
    with pytest.raises(SimConfigError):
        UTSParams(variant="wat")
    with pytest.raises(SimConfigError):
        UTSParams(b0=0)
    with pytest.raises(SimConfigError):
        UTSParams(q=1.2)
    with pytest.raises(SimConfigError):
        UTSParams(q=0.5, m=2)  # m*q >= 1 would be infinite
    with pytest.raises(SimConfigError):
        UTSParams(variant="geo", alpha=1.5)
    with pytest.raises(SimConfigError):
        UTSParams(variant="geo", depth_max=0)


def test_expected_size_formula():
    p = UTSParams(b0=100, q=0.25, m=2)
    # E[subtree] = 1/(1-0.5) = 2 -> E[total] = 1 + 200
    assert p.expected_size == pytest.approx(201.0)


def test_describe():
    assert "BIN" in UTSParams().describe()
    assert "GEO" in UTSParams(variant="geo").describe()


def test_root_frontier():
    p = UTSParams(b0=10, q=0.3, m=2, root_seed=5)
    states, depths = root_frontier(p)
    assert len(states) == 10
    assert (depths == 1).all()


def test_expand_empty():
    p = UTSParams()
    cs, cd = expand(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int32),
                    p)
    assert len(cs) == 0 and len(cd) == 0


def test_expand_bin_counts_are_0_or_m():
    p = UTSParams(b0=10, q=0.3, m=3, root_seed=1)
    s, d = root_frontier(p)
    counts = child_counts(s, d, p)
    assert set(np.unique(counts)) <= {0, 3}


def test_geo_depth_cutoff():
    p = UTSParams(variant="geo", b0=3, alpha=0.9, depth_max=2, root_seed=1)
    s = np.arange(10, dtype=np.uint64)
    d = np.full(10, 2, dtype=np.int32)
    assert (child_counts(s, d, p) == 0).all()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_count_matches_bruteforce_bin(seed):
    p = UTSParams(b0=8, q=0.40, m=2, root_seed=seed)
    assert count_tree(p).nodes == brute_force_count(p)


@pytest.mark.parametrize("seed", [0, 1])
def test_count_matches_bruteforce_geo(seed):
    p = UTSParams(variant="geo", b0=3, alpha=0.6, depth_max=6, root_seed=seed)
    assert count_tree(p).nodes == brute_force_count(p)


def test_count_leaves_plus_internal():
    p = UTSParams(b0=50, q=0.45, m=2, root_seed=2)
    st = count_tree(p)
    # binomial with m=2: internal non-root nodes have exactly 2 children
    internal_nonroot = st.nodes - 1 - st.leaves
    assert 1 + 50 + 2 * internal_nonroot == st.nodes  # root + b0 + children


def test_count_max_nodes_guard():
    p = UTSParams(b0=2000, q=0.4995, m=2, root_seed=1)
    with pytest.raises(SimConfigError):
        count_tree(p, max_nodes=1000)


def test_preset_sizes_documented_correctly():
    for name in ("bin_tiny", "bin_small", "bin_large", "bin_deep"):
        preset = PRESETS[name]
        assert count_tree(preset.params).nodes == preset.nodes


def test_paper_instances_blocked():
    with pytest.raises(SimConfigError):
        get_preset("bin157B")
    assert PAPER_INSTANCES["bin157B"].runnable is False


def test_get_preset():
    assert get_preset("bin_tiny").nodes == 21_483
    with pytest.raises(SimConfigError):
        get_preset("nope")
