#!/usr/bin/env python3
"""Quickstart: run the overlay-centric load balancer on a UTS instance.

Builds a 64-peer bridged tree overlay (BTD, dmax=10) on the simulated
Grid'5000 cluster, counts a ~22k-node unbalanced tree in parallel, and
prints the load-balancing story: makespan, efficiency, message traffic.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, UTSApplication, get_uts_preset, run_once
from repro.experiments.seqref import sequential_time

def main() -> None:
    preset = get_uts_preset("bin_tiny")
    app = UTSApplication(preset.params)
    print(f"instance : {preset.describe()}")

    cfg = RunConfig(protocol="BTD", n=64, dmax=10, quantum=256, seed=7)
    result = run_once(cfg, app)

    t_seq = sequential_time(app)
    print(f"protocol : {cfg.protocol} (dmax={cfg.dmax}, "
          f"{cfg.sharing} sharing)")
    print(f"workers  : {cfg.n}")
    print(f"nodes counted        : {result.total_units:,} "
          f"(sequential oracle: {preset.nodes:,})")
    assert result.total_units == preset.nodes, "lost work?!"
    print(f"virtual makespan     : {result.makespan * 1e3:.2f} ms")
    print(f"sequential time      : {t_seq * 1e3:.2f} ms")
    print(f"speedup              : {t_seq / result.makespan:.1f}x "
          f"on {cfg.n} workers "
          f"(efficiency {100 * result.efficiency(t_seq):.0f}%)")
    print(f"messages             : {result.total_msgs:,} "
          f"({result.total_steals:,} work requests)")

if __name__ == "__main__":
    main()
