#!/usr/bin/env python3
"""Plug your own application into the load-balancing framework.

The protocols are generic over anything that implements the
:class:`repro.work.WorkItem` split/merge contract plus an
:class:`repro.apps.Application` adapter. Here: a toy "adaptive quadrature"
— numerically integrating a spiky function by interval refinement, where
the work (like UTS and B&B trees) expands unpredictably at runtime.

Run:  python examples/custom_application.py
"""

import math
from typing import Any, Optional

from repro import RunConfig
from repro.apps.base import Application, ProcessOutcome
from repro.work.base import WorkItem

def f(x: float) -> float:
    """A nasty integrand: sharp peaks of varying width."""
    return sum(1.0 / (1e-4 + (x - c) ** 2) for c in (0.1, 0.35, 0.62, 0.883))

class QuadratureWork(WorkItem):
    """A stack of (lo, hi, tolerance) intervals awaiting refinement."""

    def __init__(self, segments=None):
        self.segments: list[tuple[float, float, float]] = list(segments or [])
        self.accumulated = 0.0  # integral mass settled by this worker

    def amount(self) -> int:
        return len(self.segments)

    def split(self, fraction: float) -> Optional["QuadratureWork"]:
        give = min(int(len(self.segments) * fraction),
                   len(self.segments) - 1)
        if give <= 0:
            return None
        piece = QuadratureWork(self.segments[:give])
        del self.segments[:give]
        return piece

    def merge(self, other: WorkItem) -> None:
        assert isinstance(other, QuadratureWork)
        self.segments.extend(other.segments)
        self.accumulated += other.accumulated
        other.segments, other.accumulated = [], 0.0

    def encoded_bytes(self) -> int:
        return 24 * len(self.segments)

    def refine(self, max_units: int) -> int:
        done = 0
        while self.segments and done < max_units:
            lo, hi, tol = self.segments.pop()
            mid = (lo + hi) / 2
            coarse = (hi - lo) * (f(lo) + f(hi)) / 2
            fine = ((mid - lo) * (f(lo) + f(mid)) / 2
                    + (hi - mid) * (f(mid) + f(hi)) / 2)
            done += 1
            if abs(fine - coarse) < tol:
                self.accumulated += fine
            else:
                self.segments.append((lo, mid, tol / 2))
                self.segments.append((mid, hi, tol / 2))
        return done

class QuadratureApp(Application):
    name = "adaptive-quadrature"
    unit_cost = 2e-6

    def initial_work(self) -> QuadratureWork:
        return QuadratureWork([(0.0, 1.0, 1e-6)])

    def empty_work(self) -> QuadratureWork:
        return QuadratureWork()

    def process(self, work: QuadratureWork, max_units: int,
                shared: Any) -> ProcessOutcome:
        return ProcessOutcome(units=work.refine(max_units))

def main() -> None:
    # sequential reference
    seq = QuadratureApp().initial_work()
    seq_units = 0
    while seq.amount():
        seq_units += seq.refine(1 << 20)
    print(f"sequential: integral = {seq.accumulated:.6f} "
          f"({seq_units:,} refinements)")

    # the same integral, load-balanced over 32 simulated peers
    from repro.experiments.runner import build_workers
    from repro.sim import Simulator, grid5000
    cfg = RunConfig(protocol="BTD", n=32, dmax=6, quantum=512, seed=3)
    sim = Simulator(grid5000(), seed=3)
    workers = build_workers(sim, cfg, QuadratureApp())
    stats = sim.run()
    total = sum(w.work.accumulated for w in workers)
    units = stats.total_work_units
    print(f"parallel  : integral = {total:.6f} ({units:,} refinements "
          f"on {cfg.n} workers, makespan {stats.makespan * 1e3:.2f} ms)")
    assert math.isclose(total, seq.accumulated, rel_tol=1e-9)
    assert units == seq_units
    print("parallel result identical to sequential — work conservation "
          "holds for custom applications too.")

if __name__ == "__main__":
    main()
