#!/usr/bin/env python3
"""Visualize how busy the simulated fleet stays under different protocols.

Attaches an activity tracer to identical UTS runs under the overlay-centric
protocol (BTD) and random work stealing (RWS), then prints each run's
system-utilization timeline — the picture behind every efficiency number in
the paper's §IV.

Run:  python examples/utilization_timeline.py
"""

from repro import RunConfig, UTSApplication, get_uts_preset, run_once
from repro.experiments.seqref import sequential_time
from repro.sim.trace import Tracer, render_profile

def main() -> None:
    preset = get_uts_preset("bin_small")
    n = 64
    print(f"workload: {preset.describe()}, {n} workers\n")
    t_seq = sequential_time(UTSApplication(preset.params))

    for proto in ("BTD", "RWS"):
        app = UTSApplication(preset.params)
        tracer = Tracer()
        result = run_once(RunConfig(protocol=proto, n=n, dmax=10,
                                    quantum=256, seed=21),
                          app, tracer=tracer)
        assert result.total_units == preset.nodes
        profile = tracer.utilization_profile(result.makespan, app.unit_cost,
                                             n, buckets=12)
        t90 = tracer.work_completed_by(0.9, result.total_units)
        print(f"=== {proto}: makespan {result.makespan * 1e3:.2f} ms, "
              f"efficiency {100 * result.efficiency(t_seq):.0f}%, "
              f"90% of work done by {t90 * 1e3:.2f} ms ===")
        print(render_profile(profile))
        print()

    print("The ramp-up (first buckets) is work distribution; the tail is")
    print("the drain + termination detection. Protocol quality is the area")
    print("under the curve.")

if __name__ == "__main__":
    main()
