#!/usr/bin/env python3
"""Solve a flow-shop instance exactly with four parallel B&B schemes.

Solves a scaled Taillard instance (Ta22 truncated to 9 jobs x 8 machines)
with the overlay-centric protocol and the paper's three baselines, checks
they all find the same optimum, and contrasts their cost profiles.

Run:  python examples/flowshop_bnb.py
"""

from repro import BnBApplication, RunConfig, run_once, scaled_instance
from repro.bnb import BnBEngine
from repro.bnb.neh import neh
from repro.experiments.report import render_table

def main() -> None:
    inst = scaled_instance(2, n_jobs=9, n_machines=8)
    print(inst.describe())

    heuristic, perm = neh(inst)
    print(f"NEH heuristic        : makespan {heuristic} (order {perm})")

    optimum, opt_perm, seq_nodes = BnBEngine(inst, bound="lb1").solve()
    print(f"sequential B&B       : optimum {optimum} after {seq_nodes:,} "
          f"bound evaluations")
    print(f"optimal permutation  : {list(opt_perm)}")
    print()

    rows = []
    for proto in ("BTD", "RWS", "MW", "AHMW"):
        cfg = RunConfig(protocol=proto, n=32, dmax=10, quantum=16, seed=11)
        res = run_once(cfg, BnBApplication(inst, warm_start=True))
        assert res.optimum == optimum, (proto, res.optimum, optimum)
        rows.append([proto, res.optimum, res.total_units,
                     res.makespan * 1e3, res.total_msgs, res.redundancy])
    print(render_table(
        ["protocol", "optimum", "nodes explored", "makespan (ms)",
         "messages", "redundant positions"],
        rows, title="parallel B&B on 32 simulated workers "
                    "(all must agree on the optimum)", digits=2))
    print("\nNote how MW pays in redundant exploration (stale master view)"
          "\nand AHMW in time (masters do not explore), exactly the paper's"
          "\nqualitative story.")

if __name__ == "__main__":
    main()
