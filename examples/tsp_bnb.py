#!/usr/bin/env python3
"""Exact TSP by parallel branch-and-bound on the generic framework.

The paper motivates its load balancer with "hard combinatorial optimization
problems coming from various domains" and cites parallel B&B for the
asymmetric TSP (Pekny & Miller) among them. This example shows the
repository's worker framework solving a different combinatorial problem
than flow shop: an exact TSP with a pool-of-subproblems work encoding and a
cheapest-outgoing-edges lower bound, load-balanced by the overlay-centric
protocol — with the optimum cross-checked against brute force.

Run:  python examples/tsp_bnb.py
"""

import itertools
from typing import Optional

from repro import RunConfig
from repro.apps.base import Application, ProcessOutcome
from repro.experiments.runner import build_workers
from repro.sim import Simulator, grid5000
from repro.sim.rng import spawn_numpy
from repro.work.base import WorkItem

N_CITIES = 11


def make_distances(n: int, seed: int = 7):
    rng = spawn_numpy(seed, "tsp")
    d = rng.integers(5, 100, size=(n, n))
    for i in range(n):
        d[i, i] = 10 ** 6
    return d.tolist()


class TSPWork(WorkItem):
    """A pool of subproblems: partial tours (prefix, cost)."""

    def __init__(self, subproblems=None):
        self.subproblems: list[tuple[tuple[int, ...], int]] = list(
            subproblems or [])

    def amount(self) -> int:
        return len(self.subproblems)

    def split(self, fraction: float) -> Optional["TSPWork"]:
        give = min(int(len(self.subproblems) * fraction),
                   len(self.subproblems) - 1)
        if give <= 0:
            return None
        # donate the shallowest subproblems: they carry the most search
        self.subproblems.sort(key=lambda s: -len(s[0]))
        piece = TSPWork(self.subproblems[-give:])
        del self.subproblems[-give:]
        return piece

    def merge(self, other: WorkItem) -> None:
        assert isinstance(other, TSPWork)
        self.subproblems.extend(other.subproblems)
        other.subproblems = []

    def encoded_bytes(self) -> int:
        return sum(8 + 4 * len(p) for p, _ in self.subproblems)


class TSPBound:
    """Shared best-tour state (mirrors repro.bnb.state.BoundState)."""

    def __init__(self):
        self.value = 10 ** 9
        self.tour = None
        self.perm_value = 10 ** 9

    def update(self, value, tour=None):
        if value >= self.value:
            return False
        self.value = value
        if tour is not None:
            self.tour = tour
            self.perm_value = value
        return True


class TSPApplication(Application):
    name = "tsp-bnb"
    unit_cost = 2e-5

    def __init__(self, dist):
        self.dist = dist
        self.n = len(dist)
        # lower-bound helper: cheapest outgoing edge per city
        self.min_out = [min(x for j, x in enumerate(row) if j != i)
                        for i, row in enumerate(dist)]

    def initial_work(self) -> TSPWork:
        return TSPWork([((0,), 0)])

    def empty_work(self) -> TSPWork:
        return TSPWork()

    def make_shared(self) -> TSPBound:
        return TSPBound()

    def shared_value(self, shared) -> Optional[int]:
        return shared.value if shared.value < 10 ** 9 else None

    def absorb_value(self, shared, value) -> bool:
        return shared.update(value)

    def process(self, work: TSPWork, max_units: int,
                shared: TSPBound) -> ProcessOutcome:
        done = 0
        improved = False
        dist, n, min_out = self.dist, self.n, self.min_out
        while work.subproblems and done < max_units:
            prefix, cost = work.subproblems.pop()
            done += 1
            last = prefix[-1]
            if len(prefix) == n:
                total = cost + dist[last][0]
                if shared.update(total, prefix):
                    improved = True
                continue
            used = set(prefix)
            # bound: cost so far + cheapest way out of every remaining city
            lb = cost + min_out[last] + sum(
                min_out[c] for c in range(n) if c not in used)
            if lb >= shared.value:
                continue
            for c in range(n):
                if c not in used:
                    work.subproblems.append((prefix + (c,),
                                             cost + dist[last][c]))
        return ProcessOutcome(units=done, improved=improved)


def brute_force(dist):
    n = len(dist)
    best, best_tour = 10 ** 9, None
    for perm in itertools.permutations(range(1, n)):
        tour = (0,) + perm
        c = sum(dist[tour[i]][tour[(i + 1) % n]] for i in range(n))
        if c < best:
            best, best_tour = c, tour
    return best, best_tour


def main() -> None:
    dist = make_distances(N_CITIES)
    print(f"asymmetric TSP, {N_CITIES} cities (seeded random distances)")

    app = TSPApplication(dist)
    cfg = RunConfig(protocol="BTD", n=32, dmax=6, quantum=512, seed=5)
    sim = Simulator(grid5000(), seed=5)
    workers = build_workers(sim, cfg, app)
    stats = sim.run()
    best = min(w.shared.value for w in workers)
    tour = next(w.shared.tour for w in workers
                if w.shared.perm_value == best)
    print(f"parallel B&B : tour cost {best} via {tour} "
          f"({stats.total_work_units:,} subproblems on {cfg.n} workers, "
          f"makespan {stats.makespan * 1e3:.1f} ms)")

    if N_CITIES <= 11:
        opt, opt_tour = brute_force(dist)
        assert best == opt, (best, opt)
        print(f"brute force  : tour cost {opt} — exact optimum confirmed")

if __name__ == "__main__":
    main()
