#!/usr/bin/env python3
"""Explore how the overlay's shape drives load-balancing performance.

Reproduces the spirit of the paper's Table I / Fig 1 interactively: builds
TD trees of varying degree, a random tree and a bridged tree over 64 peers,
prints their structural metrics, then runs the same UTS workload over each
and relates structure to performance.

Run:  python examples/overlay_explorer.py
"""

from repro import (RunConfig, UTSApplication, add_bridges,
                   deterministic_tree, get_uts_preset, random_tree, run_once)
from repro.experiments.report import render_table
from repro.overlay import summarize

def main() -> None:
    n = 64
    preset = get_uts_preset("bin_tiny")
    app = UTSApplication(preset.params)
    print(f"workload: {preset.describe()}; {n} peers\n")

    overlays = {
        "TD dmax=2": ("TD", 2),
        "TD dmax=4": ("TD", 4),
        "TD dmax=10": ("TD", 10),
        "TR (random)": ("TR", 2),
        "BTD dmax=10": ("BTD", 10),
    }

    # structural metrics first
    rows = []
    for label, (proto, dmax) in overlays.items():
        tree = (random_tree(n, seed=42) if proto == "TR"
                else deterministic_tree(n, dmax))
        s = summarize(tree)
        extra = ""
        if proto == "BTD":
            b = add_bridges(tree, seed=42)
            far = sum(1 for v in range(n)
                      if tree.distance(v, b.bridge[v]) > s.height // 2)
            extra = f"+{n} bridges ({far} far)"
        rows.append([label, s.height, s.diameter, s.max_degree, s.leaves,
                     extra])
    print(render_table(
        ["overlay", "height", "diameter", "max deg", "leaves", "notes"],
        rows, title="overlay structure"))
    print()

    # then performance of the same workload on each
    rows = []
    for label, (proto, dmax) in overlays.items():
        res = run_once(RunConfig(protocol=proto, n=n, dmax=dmax,
                                 quantum=128, seed=42), app)
        assert res.total_units == preset.nodes
        rows.append([label, res.makespan * 1e3, res.total_msgs,
                     res.total_steals])
    print(render_table(
        ["overlay", "makespan (ms)", "messages", "work requests"],
        rows, title="same workload, different overlays", digits=2))
    print("\nSmaller diameter -> faster work flow; bridges reduce the "
          "dependency\non tree distance exactly as the paper argues (§II-B).")

if __name__ == "__main__":
    main()
