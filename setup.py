"""Legacy shim: lets `pip install -e .` work offline without the wheel pkg."""

from setuptools import setup

setup()
