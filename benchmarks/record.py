"""Record kernel throughput against the pre-overhaul baseline.

Usage::

    PYTHONPATH=src python benchmarks/record.py

Re-measures the hot paths touched by the vectorised-kernel overhaul and
writes ``BENCH_kernels.json`` next to this file with before/after/speedup
per metric. The BASELINE numbers were captured at the seed commit with the
same methodology (same instances, budgets and best-of-N repeats as below),
so the speedup column is apples-to-apples on the recording machine.
"""

import json
import pathlib
import platform
import time

from repro.bnb.engine import BnBEngine
from repro.bnb.state import BoundState
from repro.bnb.taillard import scaled_instance
from repro.bnb.work import BnBWork
from repro.sim.events import EventQueue
from repro.uts.sequential import count_tree
from repro.uts.tree import UTSParams

#: Throughput at the seed commit (ops or nodes per second), measured with
#: the functions below on the same machine before the kernel overhaul.
BASELINE = {
    "event_queue_ops_per_s": 524_760,
    "bnb_lb1_nodes_per_s": 235_489,
    "bnb_llrk_nodes_per_s": 73_660,
    "bnb_llrk_full_nodes_per_s": 70_364,
    "uts_nodes_per_s": 4_901_806,
}


def best_of(fn, repeats=5):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return out, best


def event_queue_rate():
    def run():
        q = EventQueue()
        noop = lambda: None
        for i in range(20_000):
            q.push(float(i % 97), noop)
        while q.pop() is not None:
            pass
        return q.fired

    fired, dt = best_of(run)
    return 2 * fired / dt  # push+pop pairs -> ops/sec


def bnb_rate(bound, budget=30_000):
    inst = scaled_instance(1, n_jobs=10, n_machines=10)
    eng = BnBEngine(inst, bound=bound)

    def run():
        work = BnBWork.full_tree(10)
        shared = BoundState()
        return eng.explore(work, shared, budget).nodes

    nodes, dt = best_of(run)
    return nodes / dt


def uts_rate():
    params = UTSParams(b0=2000, q=0.49, m=2, root_seed=5)

    def run():
        return count_tree(params, max_nodes=5_000_000).nodes

    nodes, dt = best_of(run, repeats=3)
    return nodes / dt


def main():
    after = {
        "event_queue_ops_per_s": round(event_queue_rate()),
        "bnb_lb1_nodes_per_s": round(bnb_rate("lb1")),
        "bnb_llrk_nodes_per_s": round(bnb_rate("llrk")),
        "bnb_llrk_full_nodes_per_s": round(bnb_rate("llrk-full")),
        "uts_nodes_per_s": round(uts_rate()),
    }
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metrics": {
            name: {
                "before": BASELINE[name],
                "after": after[name],
                "speedup": round(after[name] / BASELINE[name], 2),
            }
            for name in BASELINE
        },
    }
    out = pathlib.Path(__file__).with_name("BENCH_kernels.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    for name, row in report["metrics"].items():
        print(f"{name:32s} {row['before']:>12,} -> {row['after']:>12,} "
              f"({row['speedup']:.2f}x)")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
