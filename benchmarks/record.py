"""Record kernel and harness performance against their baselines.

Usage::

    PYTHONPATH=src python benchmarks/record.py            # kernel hot paths
    PYTHONPATH=src python benchmarks/record.py harness    # parallel runner

The default (``kernels``) mode re-measures the hot paths touched by the
vectorised-kernel overhaul and writes ``BENCH_kernels.json`` next to this
file with before/after/speedup per metric. The BASELINE numbers were
captured at the seed commit with the same methodology (same instances,
budgets and best-of-N repeats as below), so the speedup column is
apples-to-apples on the recording machine.

The ``harness`` mode times one compare-style experiment grid three ways —
serial loop, multiprocess pool (``--jobs``, default all cores), and a warm
cache rerun — and writes ``BENCH_harness.json``. The serial measurement is
the baseline the speedups are computed against.

The ``faults`` mode (``python benchmarks/record.py faults``) measures
what the fault-injection layer costs: no-plan vs null-plan runs must be
bit-identical (asserted), and a loss curve quantifies the reliable
channel's overhead. Writes ``BENCH_faults.json``.

The ``live`` mode times the :mod:`repro.runtime` multi-process backend —
end-to-end makespan and steal throughput of a small UTS tree at 2 and 4
workers, next to the simulator's wall-clock rate on the same workload —
and writes ``BENCH_runtime.json``. The regression gate compares a fresh
``live`` recording against the committed one with generous bands
(``check_regression.py --baseline benchmarks/BENCH_runtime.json``):
real sockets and scheduler jitter move these numbers far more than the
in-process kernels.

The ``scale`` mode (``python benchmarks/record.py scale``) records the
macro-event engine: fused vs unfused events-equivalent throughput on a
fixed CI-sized fleet workload (gated), plus — without ``--quick`` — the
headline 10,000-node {TD, BTD, RWS} x {UTS, synthetic} sweep as context.
Writes ``BENCH_scale.json``; the CI ``scale-smoke`` job re-records with
``--quick`` and gates it via ``check_regression.py --baseline
benchmarks/BENCH_scale.json``.

The ``shard`` mode (``python benchmarks/record.py shard``) records the
sharded parallel engine (:mod:`repro.sim.shard`) against its serial
twin on the same CI-sized gate workload: per-shard compute seconds,
the wall/CPU split of both runs, and the wall-clock speedup-vs-serial.
The speedup itself is context, not gated — it tracks the recording
machine's core count (a 1-core host *must* show < 1x: the shards
time-slice one core and pay the barrier tax on top) — while the two
throughput rates are gated so a protocol stall or a broken window
loop cannot land silently. Writes ``BENCH_shard.json``; the CI
``shard-smoke`` job re-records with ``--quick`` and gates via
``check_regression.py --baseline benchmarks/BENCH_shard.json``.

The ``serve`` mode (``python benchmarks/record.py serve``) measures the
long-lived service layer (:mod:`repro.serve`) the way a caller sees it:
an in-process daemon with two warm lanes fields 100 jobs from 4
concurrent submitters (every 10th poisoned, a rolling restart fired
mid-stream), and the recording asserts every accepted job is accounted
— done or dead-lettered — before writing sustained ``jobs_per_s`` and
accept-to-terminal p50/p99 into ``BENCH_service.json``. The gate holds
``service_jobs_per_s`` to a floor and ``service_p99_latency_s`` to a
ceiling (the one lower-is-better metric in the gate). The CI
``serve-smoke`` job re-records with ``--quick`` and gates via
``check_regression.py --baseline benchmarks/BENCH_service.json``.

``--quick`` shrinks the kernel budgets (CI-sized: the regression gate in
``check_regression.py`` runs ``kernels --quick`` on every PR); ``--out``
redirects the JSON so a fresh recording can be compared against the
committed baseline instead of overwriting it.
"""

import heapq
import json
import os
import pathlib
import platform
import tempfile
import time

from repro.bnb.engine import BnBEngine
from repro.bnb.state import BoundState
from repro.bnb.taillard import scaled_instance
from repro.bnb.work import BnBWork
from repro.sim.events import EventQueue
from repro.uts.sequential import count_tree
from repro.uts.tree import UTSParams

#: Throughput at the seed commit (ops or nodes per second), measured with
#: the functions below on the same machine before the kernel overhaul.
BASELINE = {
    "event_queue_ops_per_s": 524_760,
    "bnb_lb1_nodes_per_s": 235_489,
    "bnb_llrk_nodes_per_s": 73_660,
    "bnb_llrk_full_nodes_per_s": 70_364,
    "uts_nodes_per_s": 4_901_806,
}


def best_of(fn, repeats=5, warmup=0):
    for _ in range(warmup):
        fn()
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return out, best


def robust_seconds(fns, groups=9, per_group=5, warmup=2):
    """Median of per-group minima for each fn — low-variance wall clock.

    A plain min-of-N keeps drifting lower the longer it runs (it is a
    max-statistic of the CPU's frequency states), so two recordings of
    the same code routinely differ by 4-5% on a busy machine. The median
    of several group minima converges on the *typical* fast state
    instead, which is what a tight regression band needs. Multiple fns
    are interleaved block by block so they sample the same machine
    state — their *ratio* is then far more stable than either rate.
    (Blocks, not alternating single reps: alternating workloads thrash
    each other's caches and *add* noise.)
    """
    for fn in fns:
        for _ in range(warmup):
            fn()
    minima = [[] for _ in fns]
    for _ in range(groups):
        for slot, fn in enumerate(fns):
            best = float("inf")
            for _ in range(per_group):
                t0 = time.perf_counter()
                fn()
                dt = time.perf_counter() - t0
                best = min(best, dt)
            minima[slot].append(best)
    out = []
    for slot_minima in minima:
        slot_minima.sort()
        out.append(slot_minima[len(slot_minima) // 2])
    return out


def gated_rates():
    """(event-queue rate, machine-calibration rate), interleaved.

    The calibration loop is a raw-heapq twin of the event-queue bench
    that lives entirely in this file, so no library change can touch
    it: its throughput tracks only machine speed. ``check_regression``
    normalises the gated rates by the baseline/fresh calibration ratio,
    which is what lets the event-queue metric carry a 3% band — the
    absolute rates move with CI hardware and machine load, but the
    event-queue/calibration ratio only moves when EventQueue's code
    gets slower.
    """
    def eq_run():
        q = EventQueue()
        noop = lambda: None
        for i in range(20_000):
            q.push(float(i % 97), noop)
        while q.pop() is not None:
            pass

    def calib_run():
        h = []
        seq = 0
        noop = lambda: None
        for i in range(20_000):
            heapq.heappush(h, (float(i % 97), seq, noop))
            seq += 1
        while h:
            h[0][2]()
            heapq.heappop(h)

    eq_s, calib_s = robust_seconds((eq_run, calib_run))
    return 40_000 / eq_s, 40_000 / calib_s  # push+pop pairs -> ops/sec


def bnb_rate(bound, budget=30_000, repeats=5):
    inst = scaled_instance(1, n_jobs=10, n_machines=10)
    eng = BnBEngine(inst, bound=bound)

    def run():
        work = BnBWork.full_tree(10)
        shared = BoundState()
        return eng.explore(work, shared, budget).nodes

    nodes, dt = best_of(run, repeats=repeats, warmup=1)
    return nodes / dt


def uts_rate(max_nodes=5_000_000, repeats=3):
    params = UTSParams(b0=2000, q=0.49, m=2, root_seed=5)

    def run():
        return count_tree(params, max_nodes=max_nodes).nodes

    nodes, dt = best_of(run, repeats=repeats, warmup=1)
    return nodes / dt


def harness_grid():
    """A compare-style grid: 2 apps x 2 protocols x 2 sizes x 2 trials."""
    from repro.experiments.runner import RunConfig, cell_configs
    from repro.experiments.specs import BnBSpec, UTSSpec
    from repro.uts.params import PRESETS

    specs = ((UTSSpec(PRESETS["bin_small"].params), ("BTD", "RWS")),
             (BnBSpec(1, n_jobs=8, n_machines=8), ("BTD", "MW")))
    cells = []
    for spec, protocols in specs:
        for proto in protocols:
            for n in (16, 32):
                cfg = RunConfig(protocol=proto, n=n, quantum=64, seed=42)
                cells.extend((c, spec) for c in cell_configs(cfg, 2))
    return cells


def harness(jobs=0):
    from repro.experiments.cache import ResultCache
    from repro.experiments.parallel import resolve_jobs, run_cells

    jobs = resolve_jobs(jobs)   # 0 -> all cores
    cells = harness_grid()

    t0 = time.perf_counter()
    serial = run_cells(cells, jobs=1, use_cache=False)
    serial_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(pathlib.Path(tmp))
        t0 = time.perf_counter()
        parallel = run_cells(cells, jobs=jobs, cache=cache)
        parallel_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        cached = run_cells(cells, jobs=jobs, cache=cache)
        cached_s = time.perf_counter() - t0
        assert cache.hits >= len(cells), "warm rerun must be pure hits"

    assert serial == parallel == cached, "paths must be bit-identical"
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": os.cpu_count(),
        "jobs": jobs,
        "cells": len(cells),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "cached_s": round(cached_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cached_speedup": round(serial_s / cached_s, 2),
    }
    out = pathlib.Path(__file__).with_name("BENCH_harness.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{len(cells)} cells on {report['cores']} core(s), jobs={jobs}")
    print(f"serial   {serial_s:8.3f}s")
    print(f"parallel {parallel_s:8.3f}s ({report['parallel_speedup']:.2f}x)")
    print(f"cached   {cached_s:8.3f}s ({report['cached_speedup']:.2f}x)")
    print(f"wrote {out}")


def faults(out=None):
    """Overhead of the fault layer: null-plan bit-identity, loss curve,
    partition-then-heal and gray-failure cells (the last two gated)."""
    from repro.experiments.runner import RunConfig, run_once
    from repro.experiments.specs import UTSSpec
    from repro.sim.faults import FaultPlan
    from repro.uts.params import PRESETS

    spec = UTSSpec(PRESETS["bin_tiny"].params)
    _eq_rate, calib_rate = gated_rates()

    def cell(plan, **cfg_kwargs):
        def run():
            cfg = RunConfig(protocol="BTD", n=16, quantum=64, seed=42,
                            faults=plan, **cfg_kwargs)
            return run_once(cfg, spec.build())
        return best_of(run, repeats=3)

    clean, clean_s = cell(None)
    null, null_s = cell(FaultPlan())
    assert (clean.makespan == null.makespan
            and clean.total_msgs == null.total_msgs
            and clean.total_units == null.total_units), \
        "a null FaultPlan must not perturb the simulation"

    curve = {}
    for loss in (0.05, 0.1, 0.2):
        res, dt = cell(FaultPlan(loss=loss))
        curve[str(loss)] = {
            "wall_s": round(dt, 4),
            "wall_ratio": round(dt / clean_s, 2),
            "makespan_ratio": round(res.makespan / clean.makespan, 2),
            "lost": res.msgs_lost,
            "retransmits": res.retransmits,
        }

    # partition-then-heal: islands {0..7} | {8..15} cut for 6 virtual ms,
    # tight breaker pacing so routing-around engages inside the window
    pacing = {"ack_timeout": 5e-4, "breaker_threshold": 3}
    part_plan = FaultPlan(partitions=((tuple(range(8, 16)), 1e-3, 7e-3),))
    part, part_s = cell(part_plan, **pacing)
    assert part.total_units == clean.total_units, \
        "a healed partition must not lose work"
    assert part.breaker_opens > 0, \
        "the partition cell must exercise the circuit breaker"
    partition = {
        "wall_s": round(part_s, 4),
        "wall_ratio": round(part_s / clean_s, 2),
        "makespan_ratio": round(part.makespan / clean.makespan, 2),
        "dropped": part.msgs_lost,
        "breaker_opens": part.breaker_opens,
    }

    # gray failure: pid 8 computes 8x slower behind flaky 4x-delay links
    gray_fp = FaultPlan(slowdowns=((8, 0.0, 8e-3, 8.0),),
                        gray_links=((None, 8, 0.0, 8e-3, 4.0, 0.5),
                                    (8, None, 0.0, 8e-3, 4.0, 0.5)))
    gray, gray_s = cell(gray_fp, **pacing)
    assert gray.total_units == clean.total_units, \
        "a gray peer is alive: no work may be lost"
    gray_row = {
        "wall_s": round(gray_s, 4),
        "wall_ratio": round(gray_s / clean_s, 2),
        "makespan_ratio": round(gray.makespan / clean.makespan, 2),
        "dropped": gray.msgs_lost,
        "breaker_opens": gray.breaker_opens,
        "retransmits": gray.retransmits,
    }

    after = {
        "faults_partition_units_per_wall_s": round(part.total_units
                                                   / part_s),
        "faults_gray_units_per_wall_s": round(gray.total_units / gray_s),
    }
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "calibration_ops_per_s": round(calib_rate),
        "clean_wall_s": round(clean_s, 4),
        "null_plan_wall_s": round(null_s, 4),
        "null_plan_wall_ratio": round(null_s / clean_s, 2),
        "null_plan_bit_identical": True,
        "loss_curve": curve,
        "partition": partition,
        "gray": gray_row,
        "metrics": {name: {"after": value} for name, value in after.items()},
    }
    out = (pathlib.Path(out) if out
           else pathlib.Path(__file__).with_name("BENCH_faults.json"))
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"clean      {clean_s:8.4f}s")
    print(f"null plan  {null_s:8.4f}s ({report['null_plan_wall_ratio']:.2f}x,"
          " bit-identical)")
    for loss, row in curve.items():
        print(f"loss={loss:4s} {row['wall_s']:8.4f}s "
              f"({row['wall_ratio']:.2f}x wall, "
              f"{row['makespan_ratio']:.2f}x makespan, "
              f"{row['retransmits']} rexmit)")
    print(f"partition  {part_s:8.4f}s ({partition['makespan_ratio']:.2f}x "
          f"makespan, {partition['dropped']} dropped, "
          f"{partition['breaker_opens']} breaker trips)")
    print(f"gray peer  {gray_s:8.4f}s ({gray_row['makespan_ratio']:.2f}x "
          f"makespan, {gray_row['breaker_opens']} breaker trips)")
    print(f"wrote {out}")


def live_backend(quick=False, out=None):
    """Live multi-process backend vs the simulator on the same UTS tree.

    Records two families of cells on identical workloads:

    * **star** (n=2, 4): every protocol frame relayed by the supervisor —
      the historical baseline, whose steal throughput plateaus once the
      single router saturates (the master-bottleneck pathology the
      paper's overlay thesis exists to avoid);
    * **p2p** (n=4, 16 gated; n=64 as full-mode context): frames flow
      over direct worker<->worker connections, so steal throughput keeps
      scaling with the fleet.  The recording itself asserts the headline
      comparison — p2p at n=16 must beat the star plateau at n=4 — so a
      data plane that quietly falls back to relaying cannot re-record a
      green baseline.
    """
    from repro.experiments.runner import RunConfig, run_instrumented
    from repro.experiments.specs import UTSSpec
    from repro.runtime.supervisor import LiveConfig, run_live
    from repro.uts.params import PRESETS

    preset = "bin_tiny"
    repeats = 2 if quick else 3
    spec = UTSSpec(PRESETS[preset].params)
    _eq_rate, calib_rate = gated_rates()

    def live_cell(n, p2p):
        best_units_s = 0.0
        best_steals_s = 0.0
        for rep in range(repeats):
            res = run_live(LiveConfig(
                protocol="BTD", n=n, app={"kind": "uts", "preset": preset},
                seed=42 + rep, p2p=p2p, timeout_s=240.0)).result
            assert res.total_units == BASELINE_LIVE_NODES, res.total_units
            best_units_s = max(best_units_s, res.total_units / res.makespan)
            best_steals_s = max(best_steals_s,
                                res.total_steals / res.makespan)
        return best_units_s, best_steals_s

    after = {}
    steals = {}
    for n in (2, 4):
        units_s, steals_s = live_cell(n, p2p=False)
        after[f"live_uts_units_per_s_n{n}"] = round(units_s)
        steals[n] = round(steals_s, 1)

    p2p_steals = {}
    for n in (4, 16) if quick else (4, 16, 64):
        units_s, steals_s = live_cell(n, p2p=True)
        p2p_steals[n] = round(steals_s, 1)
        if n in (4, 16):   # gated in both modes; n=64 is context
            after[f"live_p2p_steals_per_s_n{n}"] = round(steals_s, 1)
            after[f"live_p2p_units_per_s_n{n}"] = round(units_s)
    # the tentpole claim, asserted at recording time: direct
    # worker<->worker steal traffic at n=16 exceeds the star router's
    # n=4 saturation plateau
    assert p2p_steals[16] > steals[4], (
        f"p2p n=16 steal throughput {p2p_steals[16]}/s does not clear "
        f"the n=4 star plateau {steals[4]}/s")

    def sim_run():
        cfg = RunConfig(protocol="BTD", n=4, quantum=64, seed=42)
        return run_instrumented(cfg, spec.build())[0]

    sim_res, sim_wall = best_of(sim_run, repeats=repeats, warmup=1)
    after["sim_uts_units_per_wall_s_n4"] = round(sim_res.total_units
                                                 / sim_wall)

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "preset": preset,
        "calibration_ops_per_s": round(calib_rate),
        # context, not gated: steal traffic per wall second (star vs
        # p2p data plane), and the virtual-time makespan the simulator
        # predicts for this workload
        "live_steal_reqs_per_s": steals,
        "live_p2p_steal_reqs_per_s": p2p_steals,
        "p2p_vs_star_plateau": round(p2p_steals[16] / steals[4], 2),
        "sim_virtual_makespan_s": sim_res.makespan,
        "metrics": {name: {"after": value} for name, value in after.items()},
    }
    out = (pathlib.Path(out) if out
           else pathlib.Path(__file__).with_name("BENCH_runtime.json"))
    out.write_text(json.dumps(report, indent=2) + "\n")
    for name, value in after.items():
        print(f"{name:32s} {value:>12,}")
    print(f"wrote {out}")


#: bin_tiny's sequential node count — every live bench run must still
#: explore exactly this many nodes or the recording is invalid.
BASELINE_LIVE_NODES = 21_483


def scale_bench(quick=False, out=None):
    """Macro-event engine at fleet size (``BENCH_scale.json``).

    The *gated* metrics are recorded at a fixed CI-sized workload
    (n=2000) in both modes, so a ``--quick`` re-recording is
    apples-to-apples with the committed baseline; the committed full
    recording additionally embeds the headline 10,000-node sweep
    ({TD, BTD, RWS} x {UTS, synthetic}) with its unfused twin and
    engine-speedup figure as context. Work conservation is asserted on
    every cell by :func:`repro.experiments.scale.scale_run`; the fused
    ratio on the gate cell is asserted here (a broken fusion gate would
    otherwise pass the gate as a mere slowdown).
    """
    from repro.experiments.scale import scale_run, scale_sweep, render_sweep

    _eq_rate, calib_rate = gated_rates()
    gate_kw = dict(n=2000, quantum=16, seed=42, latency=1e-2,
                   units_per_node=5_000, unit_cost=1e-6, preset="bin_small")

    fused = scale_run("TD", "synthetic", **gate_kw)
    unfused = scale_run("TD", "synthetic", fuse=False, **gate_kw)
    uts = scale_run("TD", "uts", **gate_kw)
    assert fused.fused_ratio > 0.5, (
        f"fusion barely engaged on the gate workload "
        f"(ratio {fused.fused_ratio:.3f}) — fast-path gate broken?")
    assert uts.macro_events > 0, "UTS gate cell never fused"

    after = {
        "scale_td_synth_eq_per_s": round(fused.eq_per_s),
        "scale_td_synth_unfused_events_per_s": round(unfused.events_per_s),
        "scale_td_uts_eq_per_s": round(uts.eq_per_s),
    }
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": os.cpu_count(),
        "quick": quick,
        "calibration_ops_per_s": round(calib_rate),
        # context, not gated
        "gate_workload": dict(gate_kw),
        "gate_fused_ratio": round(fused.fused_ratio, 4),
        "gate_fused_speedup": round(fused.eq_per_s / unfused.events_per_s, 2),
        "gate_makespan_match": fused.makespan == unfused.makespan,
        "metrics": {name: {"after": value} for name, value in after.items()},
    }
    for name, value in after.items():
        print(f"{name:38s} {value:>12,}")
    print(f"gate fused ratio {report['gate_fused_ratio']:.3f}, "
          f"speedup {report['gate_fused_speedup']:.2f}x")

    if not quick:
        doc = scale_sweep(10_000, progress=lambda m: print(f"  {m}",
                                                           flush=True))
        report["sweep_10k"] = doc
        print(render_sweep(doc))

    out = (pathlib.Path(out) if out
           else pathlib.Path(__file__).with_name("BENCH_scale.json"))
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


def shard_bench(quick=False, out=None, jobs=0):
    """Sharded parallel engine vs its serial twin (``BENCH_shard.json``).

    Both runs execute the fixed CI-sized gate workload (the same 2000-node
    cell ``scale_bench`` gates), so a ``--quick`` re-recording compares
    apples-to-apples with the committed baseline. Without ``--quick`` a
    10,000-node BTD/synthetic cell is added as context — the workload the
    issue's multi-core speedup claim is stated on.
    """
    from repro.experiments.parallel import resolve_jobs
    from repro.experiments.scale import scale_run

    _eq_rate, calib_rate = gated_rates()
    cores = os.cpu_count() or 1
    shards = resolve_jobs(jobs) if jobs else max(2, min(4, cores))
    gate_kw = dict(n=2000, quantum=16, seed=42, latency=1e-2,
                   units_per_node=5_000, unit_cost=1e-6, preset="bin_small")

    serial = scale_run("TD", "synthetic", **gate_kw)
    sharded = scale_run("TD", "synthetic", shards=shards, **gate_kw)
    assert sharded.total_units == serial.total_units, "conservation broken"

    after = {
        "shard_serial_td_synth_eq_per_s": round(serial.eq_per_s),
        "shard_td_synth_eq_per_s": round(sharded.eq_per_s),
    }
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": cores,
        "shards": shards,
        "quick": quick,
        "calibration_ops_per_s": round(calib_rate),
        # context, not gated
        "gate_workload": dict(gate_kw),
        "gate_serial": serial.to_json(),
        "gate_sharded": sharded.to_json(),
        "gate_speedup_vs_serial": round(serial.wall_s / sharded.wall_s, 2),
        "gate_makespan_match": sharded.makespan == serial.makespan,
        "metrics": {name: {"after": value} for name, value in after.items()},
    }
    for name, value in after.items():
        print(f"{name:38s} {value:>12,}")
    print(f"{shards} shards on {cores} core(s): "
          f"wall {sharded.wall_s:.1f}s vs serial {serial.wall_s:.1f}s "
          f"({report['gate_speedup_vs_serial']:.2f}x), "
          f"shard compute {[round(w, 1) for w in sharded.shard_walls]}s, "
          f"makespan match {report['gate_makespan_match']}")

    if not quick:
        big_kw = dict(quantum=16, seed=42, latency=1e-2,
                      units_per_node=50_000, unit_cost=1e-6,
                      preset="bin_small")
        b_serial = scale_run("BTD", "synthetic", 10_000, **big_kw)
        b_shard = scale_run("BTD", "synthetic", 10_000,
                            shards=max(shards, 4), **big_kw)
        report["btd_10k_serial"] = b_serial.to_json()
        report["btd_10k_sharded"] = b_shard.to_json()
        report["btd_10k_speedup_vs_serial"] = round(
            b_serial.wall_s / b_shard.wall_s, 2)
        # the sweep workload is zero-jitter and homogeneous — the one
        # regime where sharding may reorder exactly-simultaneous events
        # (docs/simulation.md, "Parallel sharding"), so unlike the gate
        # cell the 10k makespans need not match to the bit; conservation
        # is still exact (scale_run raises otherwise)
        report["btd_10k_makespan_match"] = (
            b_shard.makespan == b_serial.makespan)
        print(f"10k BTD: wall {b_shard.wall_s:.1f}s vs serial "
              f"{b_serial.wall_s:.1f}s "
              f"({report['btd_10k_speedup_vs_serial']:.2f}x on "
              f"{cores} core(s))")

    out = (pathlib.Path(out) if out
           else pathlib.Path(__file__).with_name("BENCH_shard.json"))
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")


def serve_bench(quick=False, out=None):
    """Service layer under sustained load (``BENCH_service.json``).

    The workload is identical in both modes — 100 jobs of the default
    mix from 4 submitters, poison every 10th, rolling restart at
    submission 40 — because the whole run costs seconds, so there is
    nothing for ``--quick`` to trim and a CI re-recording stays
    apples-to-apples with the committed baseline. The accounting
    invariant is asserted at recording time: a service that loses a job
    cannot record a green baseline.
    """
    import shutil

    from repro.serve.daemon import ServeConfig, ServeDaemon
    from repro.serve.loadgen import run_loadgen

    _eq_rate, calib_rate = gated_rates()
    daemon = ServeDaemon(ServeConfig(lanes=2, n=2, queue_limit=16,
                                     job_timeout_s=60.0))
    daemon.start()
    try:
        doc = run_loadgen(daemon.address, jobs=100, submitters=4,
                          poison_every=10, restart_at=40,
                          job_timeout_s=60.0, wait_timeout_s=300.0)
    finally:
        daemon.stop()
        shutil.rmtree(daemon.run_dir, ignore_errors=True)

    assert doc["all_accounted"], f"lost jobs: {doc}"
    assert not doc["errors"], doc["errors"]
    assert doc["dead_lettered"] == 10, \
        f"poison every 10th of 100 must dead-letter 10: {doc}"
    assert doc["restart"] and doc["restart"].get("ok"), \
        f"mid-stream rolling restart failed: {doc['restart']}"

    after = {
        "service_jobs_per_s": doc["jobs_per_s"],
        "service_p99_latency_s": doc["p99_s"],
    }
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cores": os.cpu_count(),
        "quick": quick,
        "calibration_ops_per_s": round(calib_rate),
        # context, not gated: the full loadgen document (latency is
        # accept -> terminal, queue wait included)
        "loadgen": doc,
        "metrics": {name: {"after": value} for name, value in after.items()},
    }
    out = (pathlib.Path(out) if out
           else pathlib.Path(__file__).with_name("BENCH_service.json"))
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"{doc['completed']}/{doc['jobs']} done "
          f"(+{doc['dead_lettered']} dead-lettered, "
          f"{doc['busy_retries']} busy retries) in {doc['wall_s']}s")
    print(f"service_jobs_per_s      {after['service_jobs_per_s']:>10}")
    print(f"service_p99_latency_s   {after['service_p99_latency_s']:>10}"
          f"   (p50 {doc['p50_s']}s, mean {doc['mean_s']}s)")
    print(f"wrote {out}")


def kernels(quick=False, out=None):
    eq_rate, calib_rate = gated_rates()
    if quick:
        after = {
            "event_queue_ops_per_s": round(eq_rate),
            "bnb_lb1_nodes_per_s": round(bnb_rate("lb1", budget=15_000,
                                                  repeats=3)),
            "bnb_llrk_nodes_per_s": round(bnb_rate("llrk", budget=15_000,
                                                   repeats=3)),
            "bnb_llrk_full_nodes_per_s": round(bnb_rate("llrk-full",
                                                        budget=15_000,
                                                        repeats=3)),
            "uts_nodes_per_s": round(uts_rate(max_nodes=2_000_000,
                                              repeats=2)),
        }
    else:
        after = {
            "event_queue_ops_per_s": round(eq_rate),
            "bnb_lb1_nodes_per_s": round(bnb_rate("lb1")),
            "bnb_llrk_nodes_per_s": round(bnb_rate("llrk")),
            "bnb_llrk_full_nodes_per_s": round(bnb_rate("llrk-full")),
            "uts_nodes_per_s": round(uts_rate()),
        }
    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "calibration_ops_per_s": round(calib_rate),
        "metrics": {
            name: {
                "before": BASELINE[name],
                "after": after[name],
                "speedup": round(after[name] / BASELINE[name], 2),
            }
            for name in BASELINE
        },
    }
    out = (pathlib.Path(out) if out
           else pathlib.Path(__file__).with_name("BENCH_kernels.json"))
    out.write_text(json.dumps(report, indent=2) + "\n")
    for name, row in report["metrics"].items():
        print(f"{name:32s} {row['before']:>12,} -> {row['after']:>12,} "
              f"({row['speedup']:.2f}x)")
    print(f"wrote {out}")


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", nargs="?", default="kernels",
                        choices=("kernels", "harness", "faults", "live",
                                 "scale", "shard", "serve"))
    parser.add_argument("--jobs", type=int, default=0,
                        help="pool size for harness mode / shard count for "
                             "shard mode (0 = auto)")
    parser.add_argument("--quick", action="store_true",
                        help="kernels/live mode: CI-sized budgets")
    parser.add_argument("--out", default=None,
                        help="kernels/live mode: write the JSON here instead "
                             "of overwriting the committed baseline")
    args = parser.parse_args(argv)
    if args.mode == "harness":
        harness(args.jobs)
    elif args.mode == "faults":
        faults(out=args.out)
    elif args.mode == "live":
        live_backend(quick=args.quick, out=args.out)
    elif args.mode == "scale":
        scale_bench(quick=args.quick, out=args.out)
    elif args.mode == "shard":
        shard_bench(quick=args.quick, out=args.out, jobs=args.jobs)
    elif args.mode == "serve":
        serve_bench(quick=args.quick, out=args.out)
    else:
        kernels(quick=args.quick, out=args.out)


if __name__ == "__main__":
    main()
