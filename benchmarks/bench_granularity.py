"""Benchmark + regeneration of the granularity regime study."""

from conftest import run_report

from repro.experiments import granularity


def test_granularity(benchmark, quick_scale):
    report = run_report(benchmark, granularity.run, quick_scale)
    rows = report.data["rows"]
    assert len(rows) >= 3
    # units/worker decreases as n grows, by construction
    per_worker = [r[1] for r in rows]
    assert per_worker == sorted(per_worker, reverse=True)
    # every configuration produced a sane efficiency
    for r in rows:
        assert 0 < r[3] <= 115 and 0 < r[5] <= 115
