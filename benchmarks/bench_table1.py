"""Benchmark + regeneration of Table I (overlay shape study)."""

from conftest import run_report

from repro.experiments import table1


def test_table1(benchmark, quick_scale):
    report = run_report(benchmark, table1.run, quick_scale)
    # every configuration produced trials with sane timings
    for ts in report.data.values():
        assert ts.t_min > 0
        assert ts.t_min <= ts.t_avg <= ts.t_max
