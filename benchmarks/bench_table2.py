"""Benchmark + regeneration of Table II (TD/BTD vs AHMW)."""

from conftest import run_report

from repro.experiments import table2


def test_table2(benchmark, quick_scale):
    report = run_report(benchmark, table2.run, quick_scale)
    data = report.data
    td_total = sum(t["TD"] for t in data.values())
    btd_total = sum(t["BTD"] for t in data.values())
    ahmw_total = sum(t["AHMW"] for t in data.values())
    # paper: order-of-magnitude aggregate gap (we accept >= 2x at quick
    # scale; the default scale lands at 5-10x, see EXPERIMENTS.md)
    assert ahmw_total > 2.0 * btd_total
    assert ahmw_total > 2.0 * td_total
