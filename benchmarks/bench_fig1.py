"""Benchmark + regeneration of Fig. 1 (degree/diameter analysis)."""

from conftest import run_report

from repro.experiments import fig1


def test_fig1(benchmark, quick_scale):
    report = run_report(benchmark, fig1.run, quick_scale)
    bottom = report.data["bottom"]
    # the paper's qualitative claim: interior nodes carry the traffic, and
    # more so the higher the degree
    from repro.overlay.tree import deterministic_tree
    n = quick_scale.fig1_n
    ratios = {}
    for dmax, msgs in bottom.items():
        tree = deterministic_tree(n, dmax)
        interior = [p for p in range(n) if tree.children[p]]
        leaves = [p for p in range(n) if not tree.children[p]]
        mi = sum(msgs[p] for p in interior) / len(interior)
        ml = sum(msgs[p] for p in leaves) / len(leaves)
        ratios[dmax] = mi / max(1e-9, ml)
    assert all(r > 1.0 for r in ratios.values())
    assert ratios[10] > ratios[2]
