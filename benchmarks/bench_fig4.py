"""Benchmark + regeneration of Fig. 4 (MW saturation vs BTD scaling)."""

from conftest import run_report

from repro.experiments import fig4


def test_fig4(benchmark, quick_scale):
    report = run_report(benchmark, fig4.run, quick_scale)
    ns = quick_scale.fig45_n
    data = report.data
    # BTD keeps gaining from scale on both instances
    for label in ("Ta21", "Ta23"):
        btd_first = data[(label, "BTD", ns[0])].t_avg
        btd_last = data[(label, "BTD", ns[-1])].t_avg
        assert btd_last < btd_first
    # MW's master saturation is a large-scale effect (n >= ~600, see
    # EXPERIMENTS.md for the default-scale collapse); here just check MW
    # completed everywhere with sane times
    assert all(ts.t_avg > 0 for ts in data.values())
