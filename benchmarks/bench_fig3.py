"""Benchmark + regeneration of Fig. 3 (BTD vs RWS vs MW at one scale)."""

from conftest import run_report

from repro.experiments import fig3


def test_fig3(benchmark, quick_scale):
    report = run_report(benchmark, fig3.run, quick_scale)
    data = report.data
    # all three protocols solved every instance; times positive
    for name, times in data.items():
        assert set(times) == {"BTD", "RWS", "MW"}
        assert all(t > 0 for t in times.values())
    # MW is competitive at this scale (the paper's surprising finding):
    # it must not be an order of magnitude behind the best
    for times in data.values():
        assert times["MW"] < 10 * min(times.values())
