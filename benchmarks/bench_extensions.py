"""Benches for the extension features beyond the paper's own evaluation.

* BTD vs the lifeline-hypercube design of Saraswat et al. (the related
  work the paper compares notes with: they report 94% UTS efficiency at
  128 cores, the paper replies with 96%);
* heterogeneous worker speeds (the paper's stated future work: overlays
  for heterogeneous environments) — how gracefully each protocol absorbs
  a +/-50% CPU-speed spread.
"""

from repro.apps.uts_app import UTSApplication
from repro.experiments.report import render_table
from repro.experiments.runner import RunConfig, run_once
from repro.experiments.seqref import sequential_time
from repro.uts.params import PRESETS

PRESET = PRESETS["bin_small"]


def test_btd_vs_lifeline(benchmark):
    app = UTSApplication(PRESET.params)
    t_seq = sequential_time(app)

    def run():
        rows = []
        for proto in ("BTD", "RWS", "LIFELINE"):
            r = run_once(RunConfig(protocol=proto, n=64, dmax=10,
                                   quantum=256, seed=9),
                         UTSApplication(PRESET.params))
            rows.append([proto, r.makespan * 1e3,
                         100 * r.efficiency(t_seq), r.total_msgs])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["protocol", "makespan (ms)", "PE %", "messages"], rows,
        title="overlay designs on UTS (n=64)", digits=1))
    # everyone solves it; lifeline sits in the same performance class as
    # plain RWS on this workload
    by = {r[0]: r[1] for r in rows}
    assert by["LIFELINE"] < 3 * by["RWS"]


def test_heterogeneity_absorption(benchmark):
    app = UTSApplication(PRESET.params)
    t_seq = sequential_time(app)

    def run():
        rows = []
        for proto in ("BTD", "RWS"):
            for spread in (0.0, 0.5):
                r = run_once(RunConfig(protocol=proto, n=48, dmax=10,
                                       quantum=256, seed=9,
                                       speed_spread=spread),
                             UTSApplication(PRESET.params))
                rows.append([proto, spread, r.makespan * 1e3,
                             100 * r.efficiency(t_seq)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["protocol", "speed spread", "makespan (ms)", "PE %"], rows,
        title="heterogeneous workers (UTS, n=48)", digits=1))
    # dynamic balancing absorbs heterogeneity: a +/-50% speed spread must
    # not double the makespan of either protocol
    for proto in ("BTD", "RWS"):
        homo = next(r[2] for r in rows if r[0] == proto and r[1] == 0.0)
        hetero = next(r[2] for r in rows if r[0] == proto and r[1] == 0.5)
        assert hetero < 2 * homo


def test_capacity_aware_overlay(benchmark):
    """The paper's future work: overlays adapted to heterogeneous nodes."""
    from repro.core.config import OCLBConfig

    def run():
        rows = []
        for label, aware, placement in (
                ("plain BTD", False, "random"),
                ("capacity-aware shares", True, "random"),
                ("capacity + fast-interior", True, "fast-interior")):
            r = run_once(RunConfig(protocol="BTD", n=48, dmax=10,
                                   quantum=256, seed=9, speed_spread=0.8,
                                   speed_placement=placement,
                                   oclb=OCLBConfig(capacity_aware=aware)),
                         UTSApplication(PRESET.params))
            rows.append([label, r.makespan * 1e3, r.total_msgs])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["variant", "makespan (ms)", "messages"], rows,
        title="heterogeneity-aware overlay variants "
              "(UTS, n=48, speed spread 0.8)", digits=1))
    assert all(r[1] > 0 for r in rows)
