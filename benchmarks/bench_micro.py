"""Micro-benchmarks of the substrates (throughput numbers for README)."""

import numpy as np

from repro.bnb.engine import BnBEngine
from repro.bnb.interval import position_to_permutation, tree_leaves
from repro.bnb.johnson import johnson_order, two_machine_optimal
from repro.bnb.state import BoundState
from repro.bnb.taillard import scaled_instance
from repro.bnb.work import BnBWork
from repro.overlay.bridges import add_bridges
from repro.overlay.tree import deterministic_tree
from repro.sim.events import EventQueue
from repro.uts.rng import child_states, decide_unit
from repro.uts.sequential import count_tree
from repro.uts.tree import UTSParams


def test_event_queue_throughput(benchmark):
    """push+pop rate of the simulator core."""
    def run():
        q = EventQueue()
        noop = lambda: None
        for i in range(20_000):
            q.push(float(i % 97), noop)
        while q.pop() is not None:
            pass
        return q.fired

    assert benchmark(run) == 20_000


def test_uts_expansion_rate(benchmark):
    """vectorised UTS node expansions (nodes/second ~ millions)."""
    params = UTSParams(b0=2000, q=0.49, m=2, root_seed=5)

    def run():
        return count_tree(params, max_nodes=5_000_000).nodes

    nodes = benchmark(run)
    assert nodes > 100_000


def test_uts_child_hashing(benchmark):
    states = np.arange(100_000, dtype=np.uint64)
    counts = np.full(100_000, 2, dtype=np.int64)

    def run():
        u = decide_unit(states)
        kids = child_states(states, counts)
        return len(kids) + int(u.sum())

    assert benchmark(run) > 0


def test_bnb_engine_rate(benchmark):
    """pure-Python B&B exploration (bound evaluations/second)."""
    inst = scaled_instance(1, n_jobs=10, n_machines=10)
    engine = BnBEngine(inst, bound="lb1")

    def run():
        work = BnBWork.full_tree(10)
        shared = BoundState()
        return engine.explore(work, shared, 20_000).nodes

    assert benchmark(run) >= 20_000


def test_bnb_llrk_rate(benchmark):
    """vectorised LLRK bound kernel through the full engine loop."""
    inst = scaled_instance(1, n_jobs=10, n_machines=10)
    engine = BnBEngine(inst, bound="llrk")

    def run():
        work = BnBWork.full_tree(10)
        shared = BoundState()
        return engine.explore(work, shared, 20_000).nodes

    assert benchmark(run) >= 20_000


def test_interval_decode(benchmark):
    n = 20
    positions = [tree_leaves(n) // 7 * k for k in range(7)]

    def run():
        return sum(position_to_permutation(p, n)[0] for p in positions)

    benchmark(run)


def test_johnson_bound(benchmark):
    rng = np.random.default_rng(3)
    a = rng.integers(1, 100, 20).tolist()
    b = rng.integers(1, 100, 20).tolist()

    def run():
        return two_machine_optimal(a, b)

    assert benchmark(run) > 0
    assert len(johnson_order(a, b)) == 20


def test_overlay_construction(benchmark):
    def run():
        tree = deterministic_tree(1000, 10)
        overlay = add_bridges(tree, seed=1)
        return overlay.n

    assert benchmark(run) == 1000


def test_neh_heuristic(benchmark):
    from repro.bnb.neh import neh
    from repro.bnb.taillard import taillard_instance
    inst = taillard_instance(1)  # the real 20x20 Ta21

    def run():
        return neh(inst)[0]

    value = benchmark(run)
    assert value > 0


def test_lag_bound_evaluation(benchmark):
    from repro.bnb.bounds import JohnsonLagBound
    inst = scaled_instance(1, n_jobs=12, n_machines=10)
    bound = JohnsonLagBound("adjacent").attach(inst)
    remaining = list(range(1, 12))
    front = inst.advance([0] * 10, 0)
    rem_sum = [sum(inst.p[i][j] for j in remaining[1:]) for i in range(10)]
    bound.set_mask([j in remaining[1:] for j in range(12)])

    def run():
        fd = bound.frame(remaining)
        return bound.child(front, 1, fd, rem_sum)

    assert benchmark(run) > 0


def test_decompose_block(benchmark):
    from repro.bnb.engine import BnBEngine
    from repro.bnb.interval import tree_leaves
    inst = scaled_instance(1, n_jobs=10, n_machines=10)
    engine = BnBEngine(inst)

    def run():
        return engine.decompose_block(0, BoundState(), tree_leaves(10))[1]

    assert benchmark(run) == 10


def test_fault_hooks_free_when_clean(benchmark):
    """The fault layer must cost nothing when no FaultPlan is active.

    A null plan is normalised away at Simulator construction, so every
    per-message fault hook is a dead branch. Guard both directions: the
    results are bit-identical, and the wall-clock ratio stays within
    noise (a lenient 2.5x bound — CI machines are jittery, and a real
    regression here would be a hot-path branch showing up as 1.1-1.3x on
    every message).
    """
    import time

    from repro.experiments.runner import RunConfig, run_once
    from repro.experiments.specs import UTSSpec
    from repro.sim.faults import FaultPlan
    from repro.uts.params import PRESETS

    spec = UTSSpec(PRESETS["bin_tiny"].params)

    def once(plan):
        cfg = RunConfig(protocol="BTD", n=12, quantum=64, seed=42,
                        faults=plan)
        return run_once(cfg, spec.build())

    clean = once(None)
    null = once(FaultPlan())
    assert clean.makespan == null.makespan
    assert clean.total_msgs == null.total_msgs
    assert clean.total_units == null.total_units
    assert null.msgs_lost == null.retransmits == null.repairs == 0

    def wall(plan, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            once(plan)
            best = min(best, time.perf_counter() - t0)
        return best

    assert benchmark(lambda: once(None).makespan) > 0
    t_clean = wall(None)
    t_null = wall(FaultPlan())
    assert t_null < 2.5 * t_clean, (
        f"null FaultPlan slowed the clean path {t_null / t_clean:.2f}x")
