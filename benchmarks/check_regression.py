#!/usr/bin/env python
"""Regression gate: fresh benchmark recording vs the committed baseline.

Usage (what the ``bench-gate`` CI job runs)::

    PYTHONPATH=src python benchmarks/record.py kernels --quick \
        --out /tmp/BENCH_fresh.json
    python benchmarks/check_regression.py --fresh /tmp/BENCH_fresh.json

Each metric's fresh ``after`` throughput must stay within its tolerance
band of the committed ``benchmarks/BENCH_kernels.json``; any metric below
``baseline * (1 - tolerance)`` fails the gate (non-zero exit). Bands are
per-metric (:data:`TOLERANCES`): the event-queue rate is held to 3% — the
observability hooks of ``repro.obs`` must stay no-ops when no registry is
attached, and a hot-path branch would show up exactly here — while the
NumPy-heavy kernels get wider bands because their throughput moves with
machine load. Latency-style metrics (:data:`LOWER_IS_BETTER`) band
upward instead: they fail above ``baseline * (1 + tolerance)``.

Both recordings carry a machine-calibration rate (a raw-heapq loop in
``record.py`` that no library change can touch). When present on both
sides, every fresh rate is normalised by the baseline/fresh calibration
ratio before banding, so the gate compares *code* speed rather than
*machine* speed: it corrects both a different CI machine and a busy
recording machine (all rates sag in unison — so does the yardstick).

``--tol-scale`` (or ``$BENCH_TOL_SCALE``) multiplies every band for
known-noisy environments; improvements never fail the gate, but a big one
prints a hint to re-record the baseline so the gate stays tight.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

#: Per-metric relative tolerance (fraction below baseline that still
#: passes). The fallback band covers metrics added after this file.
TOLERANCES = {
    "event_queue_ops_per_s": 0.03,
    "bnb_lb1_nodes_per_s": 0.25,
    "bnb_llrk_nodes_per_s": 0.25,
    "bnb_llrk_full_nodes_per_s": 0.25,
    "uts_nodes_per_s": 0.25,
    # live-backend rates (BENCH_runtime.json baseline): real sockets,
    # real scheduler — wall-clock noise dwarfs any code regression short
    # of a protocol stall, so the bands are deliberately generous
    "live_uts_units_per_s_n2": 0.5,
    "live_uts_units_per_s_n4": 0.5,
    # p2p data-plane cells: direct worker<->worker steal traffic.  The
    # within-recording plateau assertion (p2p n=16 > star n=4) lives in
    # record.py; these bands only catch throughput collapses
    "live_p2p_steals_per_s_n4": 0.5,
    "live_p2p_steals_per_s_n16": 0.5,
    "live_p2p_units_per_s_n4": 0.5,
    "live_p2p_units_per_s_n16": 0.5,
    "sim_uts_units_per_wall_s_n4": 0.4,
    # fleet-scale engine rates (BENCH_scale.json baseline): whole-run
    # wall clocks of 2000-process simulations — long single runs, not
    # best-of-N microbenchmarks, so machine-load noise is large even
    # after calibration; the gate is for collapses (a disabled fast
    # path halves eq/s), not percent-level drift
    "scale_td_synth_eq_per_s": 0.4,
    "scale_td_synth_unfused_events_per_s": 0.4,
    "scale_td_uts_eq_per_s": 0.5,
    # sharded parallel engine (BENCH_shard.json baseline): throughput of
    # the sharded run and its serial twin on the same gate cell. The
    # speedup figure itself is *not* gated — it depends on the recording
    # machine's core count — only the absolute rates, so a window-loop
    # stall or broken barrier shows up as a collapse
    "shard_td_synth_eq_per_s": 0.5,
    "shard_serial_td_synth_eq_per_s": 0.4,
    # fault-layer rates (BENCH_faults.json baseline): whole faulted runs
    # (partition-then-heal, gray peer) — the gate is for a routing stall
    # (a breaker that never closes, a wave that spins until abort), not
    # wall-clock drift, so the bands are generous
    "faults_partition_units_per_wall_s": 0.5,
    "faults_gray_units_per_wall_s": 0.5,
    # service layer (BENCH_service.json baseline): sustained loadgen
    # throughput over warm lanes, and accept-to-terminal p99 (queue wait
    # included, with a rolling restart mid-stream — so the latency band
    # is the widest in the file; the gate is for a stalled queue or a
    # recycle storm, not scheduler jitter)
    "service_jobs_per_s": 0.5,
    "service_p99_latency_s": 1.0,
}
DEFAULT_TOLERANCE = 0.25

#: Metrics where *smaller* is better (latencies): the band is a ceiling
#: — fail above ``baseline * (1 + tolerance)`` — and the calibration
#: correction divides instead of multiplies (a slower gate machine
#: inflates latencies by the same factor it deflates rates).
LOWER_IS_BETTER = {
    "service_p99_latency_s",
}

#: A fresh rate this far *above* baseline prints a re-record hint.
IMPROVEMENT_HINT = 0.25


def load_metrics(path: pathlib.Path) -> tuple[dict[str, float], float]:
    """``(metric name -> throughput, calibration rate)`` from BENCH json.

    The calibration rate is 0.0 for recordings that predate it.
    """
    with open(path) as fh:
        doc = json.load(fh)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise SystemExit(f"{path}: no 'metrics' table — not a kernels "
                         "recording?")
    out = {}
    for name, row in metrics.items():
        if not isinstance(row, dict) or "after" not in row:
            raise SystemExit(f"{path}: metric {name!r} has no 'after' value")
        out[name] = float(row["after"])
    return out, float(doc.get("calibration_ops_per_s", 0.0))


def check(fresh: dict[str, float], baseline: dict[str, float],
          tol_scale: float,
          calib_scale: float = 1.0) -> tuple[list[str], list[str]]:
    """Returns (failures, lines) — lines is the full report table.

    ``calib_scale`` multiplies every fresh rate before banding
    (baseline calibration / fresh calibration — i.e. how much faster
    the baseline machine is than the machine running the gate).
    """
    failures = []
    lines = [f"{'metric':34s} {'baseline':>12s} {'fresh':>12s} "
             f"{'ratio':>7s} {'band':>7s}  status",
             "-" * 84]
    for name in sorted(baseline):
        base = baseline[name]
        tol = TOLERANCES.get(name, DEFAULT_TOLERANCE) * tol_scale
        lower_better = name in LOWER_IS_BETTER
        if name not in fresh:
            failures.append(f"{name}: missing from the fresh recording")
            lines.append(f"{name:34s} {base:>12,.0f} {'-':>12s} "
                         f"{'-':>7s} {tol:>6.0%}  MISSING")
            continue
        if lower_better:
            now = fresh[name] / calib_scale if calib_scale else fresh[name]
        else:
            now = fresh[name] * calib_scale
        ratio = now / base if base else float("inf")
        if lower_better:
            ceiling = 1.0 + tol
            if ratio > ceiling:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {now:,.4f} vs baseline {base:,.4f} "
                    f"({ratio:.3f}x > {ceiling:.3f}x ceiling)")
            elif ratio < 1.0 - IMPROVEMENT_HINT:
                status = ("ok (improved — consider re-recording the "
                          "baseline)")
            else:
                status = "ok"
        else:
            floor = 1.0 - tol
            if ratio < floor:
                status = "REGRESSION"
                failures.append(
                    f"{name}: {now:,.0f} vs baseline {base:,.0f} "
                    f"({ratio:.3f}x < {floor:.3f}x floor)")
            elif ratio > 1.0 + IMPROVEMENT_HINT:
                status = ("ok (improved — consider re-recording the "
                          "baseline)")
            else:
                status = "ok"
        prec = 4 if (lower_better or base < 100) else 0
        lines.append(f"{name:34s} {base:>12,.{prec}f} {now:>12,.{prec}f} "
                     f"{ratio:>6.3f}x {tol:>6.0%}  {status}")
    for name in sorted(set(fresh) - set(baseline)):
        lines.append(f"{name:34s} {'-':>12s} {fresh[name]:>12,.0f} "
                     f"{'-':>7s} {'-':>7s}  new (no baseline)")
    return failures, lines


def main(argv=None) -> int:
    here = pathlib.Path(__file__).parent
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[1].strip())
    parser.add_argument("--fresh", required=True,
                        help="freshly recorded BENCH json to validate")
    parser.add_argument("--baseline",
                        default=str(here / "BENCH_kernels.json"),
                        help="committed baseline (default: "
                             "benchmarks/BENCH_kernels.json)")
    parser.add_argument("--tol-scale", type=float,
                        default=float(os.environ.get("BENCH_TOL_SCALE",
                                                     "1.0")),
                        help="multiply every tolerance band (noisy CI "
                             "escape hatch; also $BENCH_TOL_SCALE)")
    args = parser.parse_args(argv)

    fresh, fresh_calib = load_metrics(pathlib.Path(args.fresh))
    baseline, base_calib = load_metrics(pathlib.Path(args.baseline))
    calib_scale = 1.0
    if fresh_calib > 0.0 and base_calib > 0.0:
        calib_scale = base_calib / fresh_calib
        print(f"machine calibration: baseline {base_calib:,.0f} ops/s, "
              f"fresh {fresh_calib:,.0f} ops/s -> fresh rates x "
              f"{calib_scale:.3f}")
    failures, lines = check(fresh, baseline, args.tol_scale, calib_scale)
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed:",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(baseline)} metric(s) within tolerance "
          f"(scale {args.tol_scale:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
