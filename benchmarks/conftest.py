"""Shared fixtures for the reproduction benchmarks.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure
of the paper at the *quick* scale (CI-sized workloads) and prints the rows
next to the timing. The default-scale numbers live in EXPERIMENTS.md and
are produced by ``python -m repro.experiments --all``.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import get_scale


@pytest.fixture(scope="session")
def quick_scale():
    return get_scale("quick")


def run_report(benchmark, runner, scale):
    """Benchmark one experiment module and print its reproduction report."""
    report = benchmark.pedantic(lambda: runner(scale), rounds=1, iterations=1)
    print()
    print(report.render())
    return report
