"""Benchmark + regeneration of Fig. 2 (proportional vs steal-half)."""

from conftest import run_report

from repro.experiments import fig2


def test_fig2(benchmark, quick_scale):
    report = run_report(benchmark, fig2.run, quick_scale)
    data = report.data["bnb"]
    wins = sum(per["proportional"][0] < per["half"][0]
               for per in data.values())
    # the paper's central sharing-policy claim: proportional wins the
    # majority of the instances
    assert wins >= 5, f"proportional won only {wins}/10"
    # UTS: proportional at the largest n must not lose badly
    series = report.data["uts"]
    prop = next(s for s in series if "proportional" in s.name)
    half = next(s for s in series if "half" in s.name)
    assert prop.ys[-1] <= half.ys[-1] * 1.1
