"""Ablation benches for the design choices DESIGN.md §5 calls out.

Each bench isolates one mechanism of the overlay-centric protocol (or of
the simulation model) and prints the measured effect next to the timing:

* bridges on/off (TD vs BTD),
* sharing policy (proportional / steal-half / steal-1 / steal-2),
* upper-bound diffusion on/off for B&B,
* the converge-cast bootstrap vs oracle subtree sizes,
* message handler cost sensitivity (the MW-saturation mechanism),
* work granularity (the regime study of EXPERIMENTS.md: the BTD-vs-RWS
  ordering is a function of per-worker work).
"""

from repro.apps.bnb_app import BnBApplication
from repro.apps.uts_app import UTSApplication
from repro.bnb.taillard import scaled_instance
from repro.core.config import OCLBConfig
from repro.experiments.report import render_table
from repro.experiments.runner import RunConfig, run_once
from repro.uts.params import PRESETS

UTS_PRESET = PRESETS["bin_tiny"]
INST = scaled_instance(1, n_jobs=9, n_machines=8)


def _uts_app():
    return UTSApplication(UTS_PRESET.params)


def test_bridges_ablation(benchmark):
    """TD vs BTD on the same workload."""
    def run():
        out = {}
        for proto in ("TD", "BTD"):
            r = run_once(RunConfig(protocol=proto, n=64, dmax=10,
                                   quantum=128, seed=5), _uts_app())
            out[proto] = r
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["overlay", "makespan (ms)", "messages"],
        [[p, r.makespan * 1e3, r.total_msgs] for p, r in out.items()],
        title="bridges ablation (UTS, n=64)", digits=2))
    assert all(r.total_units == UTS_PRESET.nodes for r in out.values())


def test_sharing_policy_ablation(benchmark):
    """proportional vs steal-half vs steal-1 vs steal-2 (Dinan et al.)."""
    policies = ("proportional", "half", "steal-1", "steal-2")

    def run():
        return {pol: run_once(RunConfig(protocol="TD", n=48, dmax=10,
                                        sharing=pol, quantum=128, seed=5),
                              _uts_app())
                for pol in policies}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["policy", "makespan (ms)", "work requests"],
        [[p, r.makespan * 1e3, r.total_steals] for p, r in out.items()],
        title="sharing policy ablation (UTS, n=48)", digits=2))
    # steal-1 pathologically multiplies balancing operations (paper §I)
    assert out["steal-1"].total_steals > 2 * out["proportional"].total_steals


def test_bound_diffusion_ablation(benchmark):
    """upper-bound gossip on/off: diffusion prunes other workers' trees."""
    from repro.core.worker import WorkerConfig
    from repro.experiments.runner import build_workers
    from repro.sim import Simulator, grid5000

    def one(gossip: bool) -> int:
        cfg = RunConfig(protocol="TD", n=24, dmax=10, quantum=16, seed=5)
        sim = Simulator(grid5000(), seed=5)
        workers = build_workers(sim, cfg, BnBApplication(INST))
        for w in workers:
            w.cfg = WorkerConfig(quantum=16, seed=5, gossip_bounds=gossip)
        return sim.run().total_work_units

    def run():
        return one(True), one(False)

    with_g, without_g = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nbound diffusion ablation (B&B, n=24): nodes explored "
          f"with={with_g:,} without={without_g:,}")
    assert with_g < without_g


def test_convergecast_ablation(benchmark):
    """distributed size bootstrap vs oracle sizes: identical balancing."""
    def run():
        out = {}
        for cc in (True, False):
            r = run_once(RunConfig(protocol="TD", n=48, dmax=10, quantum=128,
                                   seed=5,
                                   oclb=OCLBConfig(convergecast=cc)),
                         _uts_app())
            out[cc] = r
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nconvergecast ablation: bootstrap {out[True].makespan*1e3:.2f} "
          f"ms vs oracle {out[False].makespan*1e3:.2f} ms")
    assert out[True].total_units == out[False].total_units


def test_handler_cost_sensitivity(benchmark):
    """per-message CPU cost is what saturates the MW master."""
    def run():
        out = {}
        for hc in (1e-6, 1e-5, 1e-4):
            r = run_once(RunConfig(protocol="MW", n=64, quantum=8, seed=5,
                                   handler_cost=hc),
                         BnBApplication(INST, warm_start=True))
            out[hc] = r
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["handler cost (s)", "makespan (ms)"],
        [[f"{hc:g}", r.makespan * 1e3] for hc, r in out.items()],
        title="MW handler-cost sensitivity (B&B, n=64)", digits=2))
    assert out[1e-4].makespan > out[1e-6].makespan


def test_termination_overhead(benchmark):
    """Cost of distributed termination detection: tail after the last work
    unit, per protocol (the paper claims the tree makes this nearly free)."""
    def run():
        rows = []
        for proto in ("TD", "BTD", "RWS", "LIFELINE"):
            r = run_once(RunConfig(protocol=proto, n=48, dmax=10,
                                   quantum=128, seed=5), _uts_app())
            rows.append([proto, r.work_done_time * 1e3,
                         (r.makespan - r.work_done_time) * 1e3,
                         100 * (r.makespan - r.work_done_time) / r.makespan])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["protocol", "work done (ms)", "detection tail (ms)",
         "tail % of makespan"],
        rows, title="termination-detection overhead (UTS, n=48)", digits=2))
    # detection is a small fraction of the run for every protocol
    assert all(r[3] < 50 for r in rows)


def test_granularity_regime(benchmark):
    """BTD-vs-RWS ordering depends on per-worker work (EXPERIMENTS.md)."""
    preset = PRESETS["bin_small"]

    def run():
        rows = []
        for n in (8, 32, 128):
            times = {}
            for proto in ("BTD", "RWS"):
                r = run_once(RunConfig(protocol=proto, n=n, dmax=10,
                                       quantum=256, seed=5),
                             UTSApplication(preset.params))
                times[proto] = r.makespan
            rows.append([n, preset.nodes // n, times["BTD"] * 1e3,
                         times["RWS"] * 1e3,
                         times["RWS"] / times["BTD"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(
        ["n", "nodes/worker", "BTD (ms)", "RWS (ms)", "RWS/BTD"],
        rows, title="granularity regime study (UTS bin_small)", digits=2))
    # coarser granularity moves the ratio in BTD's favour
    assert rows[0][4] > rows[-1][4] * 0.8
