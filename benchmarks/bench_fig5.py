"""Benchmark + regeneration of Fig. 5 (BTD vs RWS scalability + PE)."""

from conftest import run_report

from repro.experiments import fig5


def test_fig5(benchmark, quick_scale):
    report = run_report(benchmark, fig5.run, quick_scale)
    data = report.data["runs"]
    t_seq = report.data["t_seq"]
    assert set(t_seq) == {"Ta21", "Ta23", "UTS"}
    # both protocols keep making scale useful on UTS
    ns = quick_scale.fig5_uts_n
    for proto in ("BTD", "RWS"):
        first = data[("UTS", proto, ns[0])].t_avg
        last = data[("UTS", proto, ns[-1])].t_avg
        assert last < first
